#include "replication/agent.h"

#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace rcc {

void DistributionAgent::Start(SimTimeMs first_wakeup) {
  if (cancel_ == nullptr) cancel_ = MakeCancelToken();
  scheduler_->SchedulePeriodic(
      first_wakeup, region_->def().update_interval,
      [this](SimTimeMs now) { Wakeup(now); }, cancel_);
}

void DistributionAgent::Stop() {
  if (cancel_ != nullptr) {
    cancel_->store(true, std::memory_order_release);
  }
}

void DistributionAgent::TransitionHealth(RegionHealth to, SimTimeMs at) {
  RegionHealth from = region_->health();
  if (from == to) return;
  region_->set_health(to);
  if (health_observer_) health_observer_(region_->id(), from, to, at);
}

void DistributionAgent::NoteAnomaly(SimTimeMs at) {
  RegionHealth h = region_->health();
  if (h == RegionHealth::kQuarantined || h == RegionHealth::kResyncing) {
    return;  // already out of service; resync is the only way back
  }
  ++consecutive_anomalies_;
  if (consecutive_anomalies_ >= quarantine_after_) {
    quarantines_.fetch_add(1, std::memory_order_relaxed);
    quarantined_at_ = at;
    TransitionHealth(RegionHealth::kQuarantined, at);
  } else {
    TransitionHealth(RegionHealth::kSuspect, at);
  }
}

void DistributionAgent::Wakeup(SimTimeMs now) {
  // An injected stall: the agent process is wedged — no snapshot, no
  // delivery. Staleness grows honestly (the heartbeat stops advancing) and
  // each missed wakeup counts as an anomaly, so a long stall escalates to
  // quarantine and a resync rather than silently serving ever-staler data.
  if (stall_remaining_ > 0) {
    --stall_remaining_;
    NoteAnomaly(now);
    return;
  }

  RegionHealth health = region_->health();
  if (health == RegionHealth::kResyncing) {
    // A resync snapshot is already in flight; wait for it.
    return;
  }
  if (health == RegionHealth::kQuarantined) {
    // Begin recovery: the resync snapshot is taken now and, like any other
    // delivery, becomes visible after the propagation delay. Recovery is
    // checked *before* drawing a new stall, so once an in-progress stall
    // drains the region is back to HEALTHY within a bounded number of
    // wakeups (one to enter RESYNCING plus the propagation delay) under any
    // fault mix.
    if (master_tables_ == nullptr) return;  // cannot resync without masters
    TransitionHealth(RegionHealth::kResyncing, now);
    scheduler_->ScheduleAt(
        now + region_->def().update_delay,
        [this](SimTimeMs at) { Resync(at); }, cancel_);
    return;
  }

  if (injector_ != nullptr) {
    int stall = injector_->DrawStall();
    if (stall > 0) {
      stall_remaining_ = stall - 1;  // this wakeup is the first one skipped
      NoteAnomaly(now);
      return;
    }
  }

  // Snapshot what is committed *now*; it arrives update_delay later. The
  // captured heartbeat value is the region's global heartbeat row at the
  // snapshot, which is what the replica of that row will contain.
  size_t snapshot_pos = log_->UpperBoundByCommitTime(now);
  std::optional<SimTimeMs> captured_hb = global_heartbeat_->Get(region_->id());
  SimTimeMs deliver_at = now + region_->def().update_delay;

  DeliveryFate fate;
  if (injector_ != nullptr) fate = injector_->DrawDeliveryFate(now);
  if (fate.drop) {
    // The batch is lost in transit. No data is corrupted — the next
    // successful delivery applies the whole gap from the log — but the
    // missed install is an anomaly.
    NoteAnomaly(now);
    return;
  }
  scheduler_->ScheduleAt(deliver_at + fate.extra_delay_ms,
                         [this, snapshot_pos, captured_hb](SimTimeMs at) {
                           Deliver(snapshot_pos, captured_hb, at);
                         },
                         cancel_);
  if (fate.duplicate) {
    scheduler_->ScheduleAt(deliver_at,
                           [this, snapshot_pos, captured_hb](SimTimeMs at) {
                             Deliver(snapshot_pos, captured_hb, at);
                           },
                           cancel_);
  }
}

void DistributionAgent::Deliver(size_t snapshot_pos,
                                std::optional<SimTimeMs> captured_heartbeat,
                                SimTimeMs delivered_at) {
  int64_t batch_ops = 0;
  bool poisoned = false;
  bool stale = false;
  RegionHealth health_before = region_->health();
  {
    // The whole batch is applied under the region's exclusive lock: queries
    // on worker threads holding it shared never observe a half-applied
    // transaction, preserving the invariant that every view in the region
    // reflects one back-end snapshot.
    std::unique_lock<std::shared_mutex> region_guard(region_->data_lock());
    size_t from = region_->applied_log_pos();
    // Monotonicity defense: deliveries are *usually* scheduled in wake-up
    // order with a constant delay, but a delayed batch can arrive after a
    // later snapshot was applied (out-of-order), and a duplicated batch
    // arrives with its range already applied. The applied-log-pos check —
    // not an assumption about arrival order — is what keeps application in
    // commit order: a batch whose snapshot is behind the applied position
    // carries nothing new (its heartbeat is older than the installed one
    // too, since both grow with snapshot time), so it is rejected whole.
    if (snapshot_pos < from) {
      stale_batches_rejected_.fetch_add(1, std::memory_order_relaxed);
      stale = true;
    } else {
      if (region_->health() == RegionHealth::kResyncing) {
        // A pre-quarantine batch landing during resync would race the
        // rebuild snapshot; the resync covers its range anyway.
        stale_batches_rejected_.fetch_add(1, std::memory_order_relaxed);
        stale = true;
      }
    }
    if (!stale) {
      // A poisoned batch fails on one of its row ops. Decide up front which
      // one (deterministically, from the injector's seed).
      std::optional<size_t> poison_at;
      if (injector_ != nullptr) {
        size_t total_ops = 0;
        for (size_t i = from; i < snapshot_pos; ++i) {
          total_ops += log_->at(i).ops.size();
        }
        poison_at = injector_->DrawPoisonedOp(total_ops);
      }
      // Ops of one transaction typically hit one table; memoize the last
      // lower-casing so the common case pays no allocation either.
      std::string last_table;
      std::string last_lower;
      size_t op_index = 0;
      for (size_t i = from; i < snapshot_pos && !poisoned; ++i) {
        const CommittedTxn& txn = log_->at(i);
        // Apply the whole transaction to every view in the region before
        // moving to the next one: commit-order, transaction-at-a-time
        // application.
        for (const RowOp& op : txn.ops) {
          if (poison_at.has_value() && op_index == *poison_at) {
            // Mid-batch failure: this op cannot be applied, so the region is
            // stuck between snapshots. There is no per-op undo log to roll
            // back with, so the defense is complete-then-quarantine:
            // publish QUARANTINED *before the data lock is released* —
            // quarantine invalidates the heartbeat (certified_heartbeat
            // turns nullopt), so no guard can route a query at the
            // half-applied data, and the next wakeup schedules a full
            // resync. Publication order matters: were the lock released (or
            // the heartbeat installed) first, a lock-free guard probe could
            // still certify freshness off the old heartbeat while the data
            // is between snapshots.
            poisoned = true;
            break;
          }
          ++op_index;
          if (op.table != last_table) {
            last_table = op.table;
            last_lower = ToLower(op.table);
          }
          const std::vector<MaterializedView*>* views =
              region_->ViewsOf(last_lower);
          if (views == nullptr) continue;
          for (MaterializedView* view : *views) {
            view->ApplyOp(op);
            ++batch_ops;
          }
        }
      }
      if (poisoned) {
        quarantines_.fetch_add(1, std::memory_order_relaxed);
        quarantined_at_ = delivered_at;
        region_->set_health(RegionHealth::kQuarantined);
        // Neither applied_log_pos, as_of, nor the heartbeat advance: the
        // region's published state still describes the last complete
        // snapshot, and the health gate keeps anyone from trusting it.
      } else {
        ops_applied_.fetch_add(batch_ops, std::memory_order_relaxed);
        if (snapshot_pos > from) {
          region_->set_applied_log_pos(snapshot_pos);
          region_->set_as_of(log_->TimestampAtPosition(snapshot_pos));
        }
        // The heartbeat store is the publication point: it happens after the
        // data is in place, so a guard observing heartbeat T is guaranteed
        // the region reflects at least snapshot T. A never-beaten global row
        // contributes nothing (unknown, not "stale since time 0").
        if (captured_heartbeat.has_value() &&
            *captured_heartbeat > region_->local_heartbeat()) {
          region_->set_local_heartbeat(*captured_heartbeat);
        }
        region_->BumpDeliveryEpoch();
        deliveries_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Outside the data lock: health notifications and the observer may do
  // arbitrary engine-side work (metrics, tracing) and must not extend the
  // exclusive section.
  if (poisoned) {
    if (health_observer_) {
      // The store already happened under the lock; report the transition.
      health_observer_(region_->id(), health_before,
                       RegionHealth::kQuarantined, delivered_at);
    }
    return;
  }
  if (stale) {
    NoteAnomaly(delivered_at);
    return;
  }
  // A clean install restores confidence: SUSPECT heals back to HEALTHY.
  consecutive_anomalies_ = 0;
  if (region_->health() == RegionHealth::kSuspect) {
    TransitionHealth(RegionHealth::kHealthy, delivered_at);
  }
  if (observer_) {
    observer_(region_->id(), delivered_at, batch_ops, captured_heartbeat);
  }
  if (install_observer_) {
    // as_of / heartbeat are re-read post-install: only the simulation thread
    // delivers, so they still describe this batch's snapshot.
    install_observer_(region_->id(), delivered_at, region_->as_of(),
                      region_->local_heartbeat(), batch_ops, /*resync=*/false);
  }
}

void DistributionAgent::Resync(SimTimeMs now) {
  bool ok = true;
  {
    std::unique_lock<std::shared_mutex> region_guard(region_->data_lock());
    // Rebuild every view from the master tables. The master data and the
    // update log are mutated only by the simulation thread — which is the
    // thread running this event — so everything read here is one consistent
    // back-end snapshot as of `now`; setting applied_log_pos to the current
    // log size is the log catch-up (nothing committed at or before `now` is
    // missing from the rebuilt views).
    for (MaterializedView* view : region_->views()) {
      const Table* master = master_tables_(view->def().source_table);
      if (master == nullptr) {
        ok = false;
        break;
      }
      view->PopulateFrom(*master);
    }
    if (ok) {
      region_->set_applied_log_pos(log_->size());
      region_->set_as_of(log_->TimestampAtPosition(log_->size()));
      // Publication order on recovery, the mirror image of quarantine:
      // data first (above), then the heartbeat value, then — last — the
      // health flip that makes the heartbeat trustworthy again. A lock-free
      // guard that observes HEALTHY (acquire) therefore also observes the
      // restored heartbeat (its store is sequenced before the health
      // store's release).
      if (now > region_->local_heartbeat()) {
        region_->set_local_heartbeat(now);
      }
      region_->BumpDeliveryEpoch();
      region_->set_health(RegionHealth::kHealthy);
    }
  }
  if (!ok) {
    // A master table vanished mid-resync: stay quarantined and retry at a
    // later wakeup.
    TransitionHealth(RegionHealth::kQuarantined, now);
    return;
  }
  resyncs_.fetch_add(1, std::memory_order_relaxed);
  resync_latency_total_ms_.fetch_add(now - quarantined_at_,
                                     std::memory_order_relaxed);
  consecutive_anomalies_ = 0;
  if (health_observer_) {
    health_observer_(region_->id(), RegionHealth::kResyncing,
                     RegionHealth::kHealthy, now);
  }
  if (install_observer_) {
    install_observer_(region_->id(), now, region_->as_of(),
                      region_->local_heartbeat(), /*ops=*/0, /*resync=*/true);
  }
}

}  // namespace rcc
