#include "replication/snapshot.h"

#include <thread>

namespace rcc {

size_t SnapshotEpochManager::Pin(uint64_t* epoch_out) {
  for (;;) {
    for (size_t i = 0; i < kSlots; ++i) {
      uint64_t e = global_.load();
      uint64_t expected = kIdleEpoch;
      // Claim-and-pin in one CAS: a slot holding anything but kIdleEpoch is
      // both occupied and pinning that epoch.
      if (!slots_[i].epoch.compare_exchange_strong(expected, e)) continue;
      // Confirm: the pin only counts once the global epoch is re-read
      // unchanged *after* our slot store — otherwise a concurrent publish
      // may have already consulted MinPinnedEpoch without seeing us.
      for (;;) {
        uint64_t g = global_.load();
        if (g == e) {
          *epoch_out = e;
          return i;
        }
        e = g;
        slots_[i].epoch.store(e);
      }
    }
    std::this_thread::yield();
  }
}

void SnapshotEpochManager::Unpin(size_t slot) {
  slots_[slot].epoch.store(kIdleEpoch);
}

uint64_t SnapshotEpochManager::MinPinnedEpoch() const {
  uint64_t min = global_.load();
  for (const Slot& s : slots_) {
    uint64_t e = s.epoch.load();
    if (e != kIdleEpoch && e < min) min = e;
  }
  return min;
}

}  // namespace rcc
