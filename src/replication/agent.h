#ifndef RCC_REPLICATION_AGENT_H_
#define RCC_REPLICATION_AGENT_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "replication/heartbeat.h"
#include "replication/region.h"
#include "txn/update_log.h"

namespace rcc {

/// A distribution agent ("a process that wakes up regularly and checks for
/// work to do", paper §3.1). One agent serves exactly one currency region.
/// At every update_interval it snapshots the back-end log position and the
/// region's global heartbeat row, and delivers everything after update_delay,
/// applying transactions one at a time in commit order — so the region's
/// views always reflect a single committed back-end snapshot.
class DistributionAgent {
 public:
  /// All pointers must outlive the agent.
  DistributionAgent(CurrencyRegion* region, const UpdateLog* log,
                    const HeartbeatStore* global_heartbeat,
                    SimulationScheduler* scheduler)
      : region_(region),
        log_(log),
        global_heartbeat_(global_heartbeat),
        scheduler_(scheduler) {}

  DistributionAgent(const DistributionAgent&) = delete;
  DistributionAgent& operator=(const DistributionAgent&) = delete;

  /// Schedules the periodic wake-ups, first firing at `first_wakeup`.
  void Start(SimTimeMs first_wakeup);

  /// One wake-up: snapshot back-end state at `now`, schedule delivery at
  /// now + update_delay. Exposed for deterministic unit testing.
  void Wakeup(SimTimeMs now);

  /// Number of deliveries applied so far.
  int64_t deliveries() const { return deliveries_; }
  /// Number of row operations applied so far.
  int64_t ops_applied() const { return ops_applied_; }

  CurrencyRegion* region() const { return region_; }

  /// Called after each delivery batch is applied and published (outside the
  /// region's data lock): region id, virtual delivery time, row ops applied
  /// in the batch, and the heartbeat installed (nullopt when the snapshot
  /// carried none). The engine layer uses it for metrics and query traces.
  using DeliveryObserver = std::function<void(
      RegionId, SimTimeMs, int64_t, std::optional<SimTimeMs>)>;
  void set_delivery_observer(DeliveryObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  /// Applies log entries (snapshot_pos_exclusive ends the batch) and installs
  /// the captured heartbeat value (absent when the region's global row had
  /// never been beaten at snapshot time). Takes the region's exclusive
  /// data lock for the whole batch, so concurrent readers always see every
  /// view of the region at one back-end snapshot.
  void Deliver(size_t snapshot_pos, std::optional<SimTimeMs> captured_heartbeat,
               SimTimeMs delivered_at);

  CurrencyRegion* region_;
  const UpdateLog* log_;
  const HeartbeatStore* global_heartbeat_;
  SimulationScheduler* scheduler_;
  int64_t deliveries_ = 0;
  int64_t ops_applied_ = 0;
  DeliveryObserver observer_;
};

}  // namespace rcc

#endif  // RCC_REPLICATION_AGENT_H_
