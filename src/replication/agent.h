#ifndef RCC_REPLICATION_AGENT_H_
#define RCC_REPLICATION_AGENT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "replication/fault_injector.h"
#include "replication/health.h"
#include "replication/heartbeat.h"
#include "replication/region.h"
#include "txn/update_log.h"

namespace rcc {

/// A distribution agent ("a process that wakes up regularly and checks for
/// work to do", paper §3.1). One agent serves exactly one currency region.
/// At every update_interval it snapshots the back-end log position and the
/// region's global heartbeat row, and delivers everything after update_delay,
/// applying transactions one at a time in commit order — so the region's
/// views always reflect a single committed back-end snapshot.
///
/// The delivery path defends against a faulty maintenance stream (see
/// ReplicationFaultConfig for the fault model) instead of assuming
/// perfection:
///  - stale or re-ordered batches are rejected by the applied-log-pos
///    monotonicity check (the log position, not arrival order, is truth);
///  - duplicate batches are idempotent (their log range is already applied);
///  - a batch that fails mid-apply discards its half-built clones and
///    publishes QUARANTINED in the same snapshot, so half-applied data is
///    never visible to anyone;
///  - dropped batches self-heal (the next delivery applies the gap from the
///    log), but repeated anomalies escalate HEALTHY → SUSPECT → QUARANTINED;
///  - a quarantined region resyncs automatically: at the next wakeup the
///    agent rebuilds every view from a back-end master snapshot
///    (MaterializedView::PopulateFrom) into fresh clones and publishes the
///    rebuilt data, the restored heartbeat, and HEALTHY as one snapshot.
class DistributionAgent {
 public:
  /// All pointers must outlive the agent.
  DistributionAgent(CurrencyRegion* region, const UpdateLog* log,
                    const HeartbeatStore* global_heartbeat,
                    SimulationScheduler* scheduler)
      : region_(region),
        log_(log),
        global_heartbeat_(global_heartbeat),
        scheduler_(scheduler) {}

  DistributionAgent(const DistributionAgent&) = delete;
  DistributionAgent& operator=(const DistributionAgent&) = delete;

  ~DistributionAgent() { Stop(); }

  /// Schedules the periodic wake-ups, first firing at `first_wakeup`.
  void Start(SimTimeMs first_wakeup);

  /// Cancels the periodic schedule and every in-flight delivery/resync.
  /// Scheduler callbacks carry a shared cancel token (not a raw `this`
  /// check), so events still queued after the agent is destroyed are
  /// skipped instead of dereferencing freed memory. Idempotent; called by
  /// the destructor.
  void Stop();

  /// One wake-up: snapshot back-end state at `now`, schedule delivery at
  /// now + update_delay. Exposed for deterministic unit testing.
  void Wakeup(SimTimeMs now);

  /// -- fault injection ---------------------------------------------------

  /// Installs (or replaces) the replication fault injector for this agent's
  /// deliveries. The injector is owned by the agent.
  void SetFaultConfig(ReplicationFaultConfig config) {
    injector_ = std::make_unique<ReplicationFaultInjector>(std::move(config));
  }
  void ClearFaultConfig() { injector_.reset(); }
  ReplicationFaultInjector* fault_injector() { return injector_.get(); }

  /// Resolves a master table by source-table name for resync snapshots
  /// (CacheDbms wires this to the back-end). Without it a quarantined
  /// region cannot resync and stays quarantined.
  using MasterTableProvider =
      std::function<const Table*(const std::string&)>;
  void set_master_table_provider(MasterTableProvider provider) {
    master_tables_ = std::move(provider);
  }

  /// Consecutive delivery anomalies (drops, stalls, stale batches) that
  /// escalate SUSPECT to QUARANTINED. A poisoned batch quarantines
  /// immediately regardless.
  void set_quarantine_after(int anomalies) { quarantine_after_ = anomalies; }

  /// -- counters ----------------------------------------------------------
  /// All counters are atomics: they are written on the delivery path (inside
  /// the publish section) but read lock-free by stats/bench code while
  /// deliveries interleave.

  /// Number of deliveries applied so far.
  int64_t deliveries() const {
    return deliveries_.load(std::memory_order_relaxed);
  }
  /// Number of row operations applied so far.
  int64_t ops_applied() const {
    return ops_applied_.load(std::memory_order_relaxed);
  }
  /// Batches rejected because their snapshot position was behind the
  /// region's applied position (out-of-order or stale arrivals).
  int64_t stale_batches_rejected() const {
    return stale_batches_rejected_.load(std::memory_order_relaxed);
  }
  /// Times the region entered QUARANTINED.
  int64_t quarantines() const {
    return quarantines_.load(std::memory_order_relaxed);
  }
  /// Completed resyncs (QUARANTINED → RESYNCING → HEALTHY round trips).
  int64_t resyncs() const { return resyncs_.load(std::memory_order_relaxed); }
  /// Virtual time spent quarantined, summed over completed resyncs — the
  /// numerator of the bench's resync-latency metric.
  SimTimeMs resync_latency_total_ms() const {
    return resync_latency_total_ms_.load(std::memory_order_relaxed);
  }

  CurrencyRegion* region() const { return region_; }

  /// Called after each delivery batch is applied and published (outside the
  /// region's publish section): region id, virtual delivery time, row ops applied
  /// in the batch, and the heartbeat installed (nullopt when the snapshot
  /// carried none). The engine layer uses it for metrics and query traces.
  using DeliveryObserver = std::function<void(
      RegionId, SimTimeMs, int64_t, std::optional<SimTimeMs>)>;
  void set_delivery_observer(DeliveryObserver observer) {
    observer_ = std::move(observer);
  }

  /// Called on every health transition (outside the region's publish section):
  /// region id, previous state, new state, virtual time. The engine layer
  /// exports the health gauge and trace events through it.
  using HealthObserver =
      std::function<void(RegionId, RegionHealth, RegionHealth, SimTimeMs)>;
  void set_health_observer(HealthObserver observer) {
    health_observer_ = std::move(observer);
  }

  /// Called after every successful snapshot install — clean delivery batches
  /// (including empty ones, which still advance the heartbeat) and completed
  /// resyncs — outside the region's publish section: virtual install time,
  /// the back-end snapshot the region now reflects, the published heartbeat,
  /// the row ops applied (0 for a resync), and whether this was a resync.
  /// The audit layer derives each region's state timeline from this stream.
  using InstallObserver = std::function<void(
      RegionId, SimTimeMs, TxnTimestamp, SimTimeMs, int64_t, bool)>;
  void set_install_observer(InstallObserver observer) {
    install_observer_ = std::move(observer);
  }

 private:
  /// Applies log entries (snapshot_pos_exclusive ends the batch) and installs
  /// the captured heartbeat value (absent when the region's global row had
  /// never been beaten at snapshot time). Builds the successor snapshot off
  /// to the side — cloning only the views the batch touches — and publishes
  /// it atomically, so concurrent readers always see every view of the
  /// region at one back-end snapshot without blocking.
  void Deliver(size_t snapshot_pos, std::optional<SimTimeMs> captured_heartbeat,
               SimTimeMs delivered_at);

  /// Rebuilds every view of the region from the master tables at virtual
  /// time `now` (one consistent back-end snapshot: master data and log are
  /// mutated only by the simulation thread, which is running us), restores
  /// the heartbeat and re-enters HEALTHY.
  void Resync(SimTimeMs now);

  /// Sets the region's health (a fresh publish) and notifies the observer.
  /// Must be called outside the region's publish section (the observer does
  /// engine-side work); the poison path inside Deliver folds the health into
  /// its own snapshot and reports the transition itself.
  void TransitionHealth(RegionHealth to, SimTimeMs at);

  /// Records a delivery anomaly (drop, stall, stale batch): HEALTHY turns
  /// SUSPECT, and quarantine_after_ consecutive anomalies quarantine.
  void NoteAnomaly(SimTimeMs at);

  CurrencyRegion* region_;
  const UpdateLog* log_;
  const HeartbeatStore* global_heartbeat_;
  SimulationScheduler* scheduler_;
  std::unique_ptr<ReplicationFaultInjector> injector_;
  MasterTableProvider master_tables_;
  CancelToken cancel_;
  std::atomic<int64_t> deliveries_{0};
  std::atomic<int64_t> ops_applied_{0};
  std::atomic<int64_t> stale_batches_rejected_{0};
  std::atomic<int64_t> quarantines_{0};
  std::atomic<int64_t> resyncs_{0};
  std::atomic<SimTimeMs> resync_latency_total_ms_{0};
  /// Wakeups still to skip because of an injected stall.
  int stall_remaining_ = 0;
  /// Consecutive anomalies since the last clean delivery.
  int consecutive_anomalies_ = 0;
  int quarantine_after_ = 3;
  /// Virtual time the current quarantine started (for resync latency).
  SimTimeMs quarantined_at_ = 0;
  DeliveryObserver observer_;
  HealthObserver health_observer_;
  InstallObserver install_observer_;
};

}  // namespace rcc

#endif  // RCC_REPLICATION_AGENT_H_
