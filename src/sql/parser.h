#ifndef RCC_SQL_PARSER_H_
#define RCC_SQL_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "sql/ast.h"

namespace rcc {

/// Parses one statement: a SELECT (with the paper's currency clause) or a
/// BEGIN/END TIMEORDERED session marker.
///
/// Currency-clause grammar (paper §2, our concrete syntax):
///   currency_clause := CURRENCY spec (',' spec)*
///   spec            := [BOUND] number unit ON targets [BY column (',' column)*]
///   targets         := '(' alias (',' alias)* ')' | alias
///   unit            := MS | SEC | SECOND[S] | MIN | MINUTE[S] | HOUR[S]
/// Example (paper Fig. 2.1 E4):
///   SELECT * FROM Books B, Reviews R WHERE B.isbn = R.isbn
///   CURRENCY BOUND 10 MIN ON (B, R) BY B.isbn
Result<Statement> ParseStatement(std::string_view sql);

/// Parsing knobs. Off by default so view definitions and ad-hoc parses don't
/// carry positions that could collide with a different query text.
struct ParseOptions {
  /// Record each literal's byte offset in Expr::literal_offset (used by the
  /// plan cache to match literals against normalized parameter slots).
  bool record_literal_offsets = false;
};

Result<Statement> ParseStatement(std::string_view sql, const ParseOptions& opts);

/// Convenience wrapper: parses and requires a SELECT.
Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view sql);
Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view sql,
                                                const ParseOptions& opts);

}  // namespace rcc

#endif  // RCC_SQL_PARSER_H_
