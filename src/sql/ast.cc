#include "sql/ast.h"

#include "common/strings.h"

namespace rcc {

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kBinary:
      return "(" + left->ToString() + " " + std::string(BinaryOpName(op)) +
             " " + right->ToString() + ")";
    case ExprKind::kNot:
      return "NOT (" + right->ToString() + ")";
    case ExprKind::kFuncCall: {
      std::string out = func + "(";
      if (star) out += "*";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      out += ")";
      return out;
    }
    case ExprKind::kExists:
      return "EXISTS (" + subquery->ToString() + ")";
    case ExprKind::kInSubquery:
      return left->ToString() + " IN (" + subquery->ToString() + ")";
    case ExprKind::kParam:
      return "?" + std::to_string(param_index);
  }
  return "?";
}


std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->literal_offset = literal_offset;
  out->param_index = param_index;
  out->table = table;
  out->column = column;
  out->op = op;
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  out->func = func;
  out->star = star;
  for (const auto& a : args) out->args.push_back(a->Clone());
  if (subquery) out->subquery = CloneSelectStmt(*subquery);
  return out;
}

std::unique_ptr<Expr> Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::MakeColumn(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> Expr::MakeBinary(BinaryOp op, std::unique_ptr<Expr> l,
                                       std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

std::string CurrencySpec::ToString() const {
  std::string out;
  if (bound_ms % 60000 == 0) {
    out = std::to_string(bound_ms / 60000) + " MIN";
  } else if (bound_ms % 1000 == 0) {
    out = std::to_string(bound_ms / 1000) + " SECONDS";
  } else {
    out = std::to_string(bound_ms) + " MS";
  }
  out += " ON (";
  for (size_t i = 0; i < targets.size(); ++i) {
    if (i > 0) out += ", ";
    out += targets[i];
  }
  out += ")";
  if (!by_columns.empty()) {
    out += " BY ";
    for (size_t i = 0; i < by_columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += by_columns[i];
    }
  }
  return out;
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (select_star) {
    out += "*";
  } else {
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ", ";
      out += items[i].expr->ToString();
      if (!items[i].alias.empty()) out += " AS " + items[i].alias;
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    if (from[i].is_subquery()) {
      out += "(" + from[i].subquery->ToString() + ") " + from[i].alias;
    } else {
      out += from[i].table;
      if (!EqualsIgnoreCase(from[i].alias, from[i].table)) {
        out += " " + from[i].alias;
      }
    }
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (!currency.empty()) {
    out += " CURRENCY ";
    for (size_t i = 0; i < currency.size(); ++i) {
      if (i > 0) out += ", ";
      out += currency[i].ToString();
    }
  }
  return out;
}

std::unique_ptr<SelectStmt> CloneSelectStmt(const SelectStmt& s) {
  auto out = std::make_unique<SelectStmt>();
  out->select_star = s.select_star;
  out->distinct = s.distinct;
  for (const auto& item : s.items) {
    SelectItem it;
    it.expr = item.expr->Clone();
    it.alias = item.alias;
    out->items.push_back(std::move(it));
  }
  for (const auto& tr : s.from) {
    TableRef ref;
    ref.table = tr.table;
    ref.alias = tr.alias;
    ref.resolved_operand = tr.resolved_operand;
    if (tr.subquery) ref.subquery = CloneSelectStmt(*tr.subquery);
    out->from.push_back(std::move(ref));
  }
  if (s.where) out->where = s.where->Clone();
  for (const auto& g : s.group_by) out->group_by.push_back(g->Clone());
  if (s.having) out->having = s.having->Clone();
  for (const auto& o : s.order_by) {
    OrderItem oi;
    oi.expr = o.expr->Clone();
    oi.descending = o.descending;
    out->order_by.push_back(std::move(oi));
  }
  out->currency = s.currency;
  return out;
}

}  // namespace rcc
