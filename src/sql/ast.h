#ifndef RCC_SQL_AST_H_
#define RCC_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/value.h"

namespace rcc {

struct SelectStmt;

/// Expression node kinds.
enum class ExprKind {
  kLiteral,
  kColumnRef,
  kBinary,
  kNot,
  kFuncCall,   // aggregate or scalar function
  kExists,      // EXISTS (subquery)
  kInSubquery,  // expr IN (subquery)
  kParam        // plan-cache parameter slot (bound at execution time)
};

/// Binary operators (comparison, boolean, arithmetic).
enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

/// Returns the SQL spelling of an operator ("=", "AND", ...).
std::string_view BinaryOpName(BinaryOp op);

/// AST expression. A tagged struct rather than a class hierarchy: the tree is
/// small, walked in few places, and this keeps ownership simple.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  /// Sentinel for "this literal has no recorded source position".
  static constexpr size_t kNoOffset = static_cast<size_t>(-1);

  // kLiteral
  Value literal;
  /// Byte offset of the literal's token in the original query text, recorded
  /// only when parsing with ParseOptions::record_literal_offsets (the plan
  /// cache uses it to match literals to parameter slots). kNoOffset otherwise.
  size_t literal_offset = kNoOffset;

  // kParam: index into the execution-time parameter vector.
  size_t param_index = 0;

  // kColumnRef: optional qualifier ("B" in B.isbn).
  std::string table;
  std::string column;

  // kBinary / kNot
  BinaryOp op = BinaryOp::kEq;
  std::unique_ptr<Expr> left;
  std::unique_ptr<Expr> right;  // also the operand of kNot

  // kFuncCall
  std::string func;                         // upper-cased name
  std::vector<std::unique_ptr<Expr>> args;  // empty + star for COUNT(*)
  bool star = false;

  // kExists / kInSubquery (left = probe expr for IN)
  std::unique_ptr<SelectStmt> subquery;

  /// Renders the expression back to SQL-ish text.
  std::string ToString() const;

  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;

  static std::unique_ptr<Expr> MakeLiteral(Value v);
  static std::unique_ptr<Expr> MakeColumn(std::string table,
                                          std::string column);
  static std::unique_ptr<Expr> MakeBinary(BinaryOp op,
                                          std::unique_ptr<Expr> l,
                                          std::unique_ptr<Expr> r);
};

/// SELECT-list item: expression with optional alias.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;
};

/// Sentinel for "not yet resolved to an input operand".
inline constexpr uint32_t kInvalidOperand = 0xFFFFFFFFu;

/// FROM-list item: base table/view reference (with alias) or derived table.
struct TableRef {
  std::string table;  // empty for derived tables
  std::string alias;  // always non-empty after parsing (defaults to table)
  std::unique_ptr<SelectStmt> subquery;  // derived table

  /// Filled by the resolver: the unique input-operand id of this base-table
  /// instance (kInvalidOperand for derived tables).
  uint32_t resolved_operand = kInvalidOperand;

  bool is_subquery() const { return subquery != nullptr; }
};

/// One triple of the paper's currency clause:
///   [BOUND] <n> <unit> ON (T1, T2, ...) [BY col, ...]
/// The targets name table instances (aliases) of the current or an outer
/// block; the BY columns partition each consistency class into consistency
/// groups (paper §2.1).
struct CurrencySpec {
  /// Currency bound in milliseconds.
  int64_t bound_ms = 0;
  /// Table aliases forming one consistency class.
  std::vector<std::string> targets;
  /// Optional grouping columns ("BY R.isbn").
  std::vector<std::string> by_columns;

  std::string ToString() const;
};

/// ORDER BY item.
struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool descending = false;
};

/// A single SFW block, possibly with nested blocks in FROM/WHERE, and with
/// the paper's currency clause in last position.
struct SelectStmt {
  bool select_star = false;
  /// SELECT DISTINCT: duplicate output rows are removed.
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> group_by;
  /// HAVING predicate over the grouped result (may reference aggregates).
  std::unique_ptr<Expr> having;
  std::vector<OrderItem> order_by;
  /// The currency clause: zero or more specs. Empty means "use the default
  /// (tightest) constraint".
  std::vector<CurrencySpec> currency;

  std::string ToString() const;
};

/// Deep copy of a SELECT statement (used when a plan needs an independent
/// remote-branch query).
std::unique_ptr<SelectStmt> CloneSelectStmt(const SelectStmt& s);

/// INSERT INTO t [(cols)] VALUES (exprs), ... — expressions must be
/// constant (literals/arithmetic); unlisted columns become NULL.
struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty = schema order
  std::vector<std::vector<std::unique_ptr<Expr>>> rows;
};

/// UPDATE t SET col = expr [, ...] [WHERE pred] — assignments may reference
/// the current row's columns.
struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, std::unique_ptr<Expr>>> assignments;
  std::unique_ptr<Expr> where;
};

/// DELETE FROM t [WHERE pred].
struct DeleteStmt {
  std::string table;
  std::unique_ptr<Expr> where;
};

/// Statement kinds accepted by Session::Execute.
enum class StatementKind {
  kSelect,
  kInsert,            // forwarded to the back-end (paper §3 item 5)
  kUpdate,
  kDelete,
  kBeginTimeOrdered,  // BEGIN TIMEORDERED (paper §2.3)
  kEndTimeOrdered,    // END TIMEORDERED
  kExplain,           // EXPLAIN [ANALYZE] <select>
};

/// A parsed statement.
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  std::unique_ptr<SelectStmt> select;  // for kSelect and kExplain
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  /// kExplain: EXPLAIN ANALYZE executes the query and reports the trace and
  /// stats; plain EXPLAIN renders the plan without executing.
  bool explain_analyze = false;
};

}  // namespace rcc

#endif  // RCC_SQL_AST_H_
