#include "sql/parser.h"

#include <set>

#include "common/strings.h"
#include "sql/lexer.h"

namespace rcc {

namespace {

/// Keywords that terminate an implicit alias position.
const std::set<std::string>& ReservedWords() {
  static const auto* kWords = new std::set<std::string>{
      "select", "from",   "where",  "group",    "order", "by",     "as",
      "and",    "or",     "not",    "between",  "in",    "exists", "currency",
      "distinct",
      "bound",  "on",     "asc",    "desc",     "join",  "inner",  "null",
      "begin",  "end",    "timeordered",        "insert", "into",
      "values", "update", "set",    "delete", "having",
      "explain", "analyze"};
  return *kWords;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens, ParseOptions opts = {})
      : tokens_(std::move(tokens)), opts_(opts) {}

  Result<Statement> ParseStatementTop() {
    Statement stmt;
    if (MatchKeyword("begin")) {
      RCC_RETURN_NOT_OK(ExpectKeyword("timeordered"));
      stmt.kind = StatementKind::kBeginTimeOrdered;
      return FinishStatement(std::move(stmt));
    }
    if (MatchKeyword("end")) {
      RCC_RETURN_NOT_OK(ExpectKeyword("timeordered"));
      stmt.kind = StatementKind::kEndTimeOrdered;
      return FinishStatement(std::move(stmt));
    }
    if (CheckKeyword("insert")) {
      RCC_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
      stmt.kind = StatementKind::kInsert;
      return FinishStatement(std::move(stmt));
    }
    if (CheckKeyword("update")) {
      RCC_ASSIGN_OR_RETURN(stmt.update, ParseUpdate());
      stmt.kind = StatementKind::kUpdate;
      return FinishStatement(std::move(stmt));
    }
    if (CheckKeyword("delete")) {
      RCC_ASSIGN_OR_RETURN(stmt.del, ParseDelete());
      stmt.kind = StatementKind::kDelete;
      return FinishStatement(std::move(stmt));
    }
    if (MatchKeyword("explain")) {
      stmt.explain_analyze = MatchKeyword("analyze");
      RCC_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
      stmt.kind = StatementKind::kExplain;
      return FinishStatement(std::move(stmt));
    }
    RCC_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
    stmt.kind = StatementKind::kSelect;
    return FinishStatement(std::move(stmt));
  }

 private:
  Result<Statement> FinishStatement(Statement stmt) {
    if (!AtEnd()) {
      return Status::ParseError("unexpected trailing input: '" +
                                Peek().text + "'");
    }
    return stmt;
  }

  // -- token helpers --------------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool CheckKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdent && EqualsIgnoreCase(t.text, kw);
  }
  bool MatchKeyword(std::string_view kw) {
    if (CheckKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) {
      return Status::ParseError("expected '" + std::string(kw) + "' but got '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }
  bool CheckSymbol(std::string_view s, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kSymbol && t.text == s;
  }
  bool MatchSymbol(std::string_view s) {
    if (CheckSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectSymbol(std::string_view s) {
    if (!MatchSymbol(s)) {
      return Status::ParseError("expected '" + std::string(s) + "' but got '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().type != TokenType::kIdent) {
      return Status::ParseError("expected identifier but got '" + Peek().text +
                                "'");
    }
    return Advance().text;
  }

  bool IsReserved(const Token& t) const {
    return t.type == TokenType::kIdent &&
           ReservedWords().count(ToLower(t.text)) > 0;
  }

  // -- statements -----------------------------------------------------------
  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt() {
    RCC_RETURN_NOT_OK(ExpectKeyword("select"));
    auto stmt = std::make_unique<SelectStmt>();
    if (MatchKeyword("distinct")) stmt->distinct = true;

    // Select list.
    if (MatchSymbol("*")) {
      stmt->select_star = true;
    } else {
      while (true) {
        SelectItem item;
        RCC_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("as")) {
          RCC_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
        } else if (Peek().type == TokenType::kIdent && !IsReserved(Peek())) {
          item.alias = Advance().text;
        }
        stmt->items.push_back(std::move(item));
        if (!MatchSymbol(",")) break;
      }
    }

    RCC_RETURN_NOT_OK(ExpectKeyword("from"));
    {
      RCC_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
      stmt->from.push_back(std::move(first));
    }
    while (true) {
      if (MatchSymbol(",")) {
        RCC_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        stmt->from.push_back(std::move(ref));
        continue;
      }
      // `[INNER] JOIN t ON pred` sugar: comma-join + WHERE conjunct.
      if (MatchKeyword("join") ||
          (CheckKeyword("inner") && CheckKeyword("join", 1) &&
           (Advance(), Advance(), true))) {
        RCC_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        stmt->from.push_back(std::move(ref));
        RCC_RETURN_NOT_OK(ExpectKeyword("on"));
        RCC_ASSIGN_OR_RETURN(auto pred, ParseExpr());
        join_predicates_.push_back(std::move(pred));
        continue;
      }
      break;
    }

    if (MatchKeyword("where")) {
      RCC_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    // Fold JOIN ... ON predicates into WHERE.
    while (!join_predicates_.empty()) {
      auto pred = std::move(join_predicates_.back());
      join_predicates_.pop_back();
      stmt->where = stmt->where
                        ? Expr::MakeBinary(BinaryOp::kAnd, std::move(stmt->where),
                                           std::move(pred))
                        : std::move(pred);
    }

    if (MatchKeyword("group")) {
      RCC_RETURN_NOT_OK(ExpectKeyword("by"));
      while (true) {
        RCC_ASSIGN_OR_RETURN(auto e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
        if (!MatchSymbol(",")) break;
      }
    }

    if (MatchKeyword("having")) {
      RCC_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }

    if (MatchKeyword("order")) {
      RCC_RETURN_NOT_OK(ExpectKeyword("by"));
      while (true) {
        OrderItem item;
        RCC_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("desc")) {
          item.descending = true;
        } else {
          MatchKeyword("asc");
        }
        stmt->order_by.push_back(std::move(item));
        if (!MatchSymbol(",")) break;
      }
    }

    if (MatchKeyword("currency")) {
      RCC_ASSIGN_OR_RETURN(stmt->currency, ParseCurrencyClause());
    }
    return stmt;
  }

  Result<std::unique_ptr<InsertStmt>> ParseInsert() {
    RCC_RETURN_NOT_OK(ExpectKeyword("insert"));
    RCC_RETURN_NOT_OK(ExpectKeyword("into"));
    auto stmt = std::make_unique<InsertStmt>();
    RCC_ASSIGN_OR_RETURN(stmt->table, ExpectIdent());
    if (MatchSymbol("(")) {
      while (true) {
        RCC_ASSIGN_OR_RETURN(auto col, ExpectIdent());
        stmt->columns.push_back(std::move(col));
        if (!MatchSymbol(",")) break;
      }
      RCC_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    RCC_RETURN_NOT_OK(ExpectKeyword("values"));
    while (true) {
      RCC_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<std::unique_ptr<Expr>> row;
      while (true) {
        RCC_ASSIGN_OR_RETURN(auto e, ParseExpr());
        row.push_back(std::move(e));
        if (!MatchSymbol(",")) break;
      }
      RCC_RETURN_NOT_OK(ExpectSymbol(")"));
      stmt->rows.push_back(std::move(row));
      if (!MatchSymbol(",")) break;
    }
    return stmt;
  }

  Result<std::unique_ptr<UpdateStmt>> ParseUpdate() {
    RCC_RETURN_NOT_OK(ExpectKeyword("update"));
    auto stmt = std::make_unique<UpdateStmt>();
    RCC_ASSIGN_OR_RETURN(stmt->table, ExpectIdent());
    RCC_RETURN_NOT_OK(ExpectKeyword("set"));
    while (true) {
      RCC_ASSIGN_OR_RETURN(auto col, ExpectIdent());
      RCC_RETURN_NOT_OK(ExpectSymbol("="));
      RCC_ASSIGN_OR_RETURN(auto e, ParseExpr());
      stmt->assignments.emplace_back(std::move(col), std::move(e));
      if (!MatchSymbol(",")) break;
    }
    if (MatchKeyword("where")) {
      RCC_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  Result<std::unique_ptr<DeleteStmt>> ParseDelete() {
    RCC_RETURN_NOT_OK(ExpectKeyword("delete"));
    RCC_RETURN_NOT_OK(ExpectKeyword("from"));
    auto stmt = std::make_unique<DeleteStmt>();
    RCC_ASSIGN_OR_RETURN(stmt->table, ExpectIdent());
    if (MatchKeyword("where")) {
      RCC_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (MatchSymbol("(")) {
      RCC_ASSIGN_OR_RETURN(ref.subquery, ParseSelectStmt());
      RCC_RETURN_NOT_OK(ExpectSymbol(")"));
      MatchKeyword("as");
      RCC_ASSIGN_OR_RETURN(ref.alias, ExpectIdent());
      return ref;
    }
    RCC_ASSIGN_OR_RETURN(ref.table, ExpectIdent());
    ref.alias = ref.table;
    if (MatchKeyword("as")) {
      RCC_ASSIGN_OR_RETURN(ref.alias, ExpectIdent());
    } else if (Peek().type == TokenType::kIdent && !IsReserved(Peek())) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  Result<std::vector<CurrencySpec>> ParseCurrencyClause() {
    std::vector<CurrencySpec> specs;
    while (true) {
      CurrencySpec spec;
      MatchKeyword("bound");
      double quantity = 0;
      if (Peek().type == TokenType::kInt) {
        quantity = static_cast<double>(Advance().int_value);
      } else if (Peek().type == TokenType::kDouble) {
        quantity = Advance().double_value;
      } else {
        return Status::ParseError("expected a currency bound but got '" +
                                  Peek().text + "'");
      }
      RCC_ASSIGN_OR_RETURN(spec.bound_ms, ParseTimeUnit(quantity));
      RCC_RETURN_NOT_OK(ExpectKeyword("on"));
      if (MatchSymbol("(")) {
        while (true) {
          RCC_ASSIGN_OR_RETURN(auto t, ExpectIdent());
          spec.targets.push_back(std::move(t));
          if (!MatchSymbol(",")) break;
        }
        RCC_RETURN_NOT_OK(ExpectSymbol(")"));
      } else {
        RCC_ASSIGN_OR_RETURN(auto t, ExpectIdent());
        spec.targets.push_back(std::move(t));
      }
      if (MatchKeyword("by")) {
        while (true) {
          RCC_ASSIGN_OR_RETURN(auto col, ParseQualifiedName());
          spec.by_columns.push_back(std::move(col));
          // A comma may continue the BY list or start the next spec (which
          // begins with [BOUND] <number>); disambiguate by lookahead.
          if (!CheckSymbol(",")) break;
          const Token& after = Peek(1);
          if (after.type == TokenType::kInt ||
              after.type == TokenType::kDouble ||
              (after.type == TokenType::kIdent &&
               EqualsIgnoreCase(after.text, "bound"))) {
            break;
          }
          Advance();  // consume ',' within the BY list
        }
      }
      specs.push_back(std::move(spec));
      if (!MatchSymbol(",")) break;
    }
    return specs;
  }

  Result<int64_t> ParseTimeUnit(double quantity) {
    if (Peek().type != TokenType::kIdent) {
      return Status::ParseError("expected time unit after currency bound");
    }
    std::string unit = ToLower(Advance().text);
    double ms;
    if (unit == "ms" || unit == "millisecond" || unit == "milliseconds") {
      ms = quantity;
    } else if (unit == "sec" || unit == "second" || unit == "seconds" ||
               unit == "s") {
      ms = quantity * 1000;
    } else if (unit == "min" || unit == "minute" || unit == "minutes") {
      ms = quantity * 60000;
    } else if (unit == "hour" || unit == "hours" || unit == "hr") {
      ms = quantity * 3600000;
    } else {
      return Status::ParseError("unknown time unit '" + unit + "'");
    }
    if (ms < 0) {
      return Status::ParseError("currency bound must be non-negative");
    }
    return static_cast<int64_t>(ms);
  }

  Result<std::string> ParseQualifiedName() {
    RCC_ASSIGN_OR_RETURN(auto first, ExpectIdent());
    if (MatchSymbol(".")) {
      RCC_ASSIGN_OR_RETURN(auto second, ExpectIdent());
      return first + "." + second;
    }
    return first;
  }

  // -- expressions ----------------------------------------------------------
  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    RCC_ASSIGN_OR_RETURN(auto left, ParseAnd());
    while (MatchKeyword("or")) {
      RCC_ASSIGN_OR_RETURN(auto right, ParseAnd());
      left = Expr::MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    RCC_ASSIGN_OR_RETURN(auto left, ParseNot());
    while (MatchKeyword("and")) {
      RCC_ASSIGN_OR_RETURN(auto right, ParseNot());
      left =
          Expr::MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (MatchKeyword("not")) {
      RCC_ASSIGN_OR_RETURN(auto operand, ParseNot());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kNot;
      e->right = std::move(operand);
      return e;
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    if (MatchKeyword("exists")) {
      RCC_RETURN_NOT_OK(ExpectSymbol("("));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kExists;
      RCC_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
      RCC_RETURN_NOT_OK(ExpectSymbol(")"));
      return e;
    }
    RCC_ASSIGN_OR_RETURN(auto left, ParseAdditive());
    if (MatchKeyword("between")) {
      RCC_ASSIGN_OR_RETURN(auto lo, ParseAdditive());
      RCC_RETURN_NOT_OK(ExpectKeyword("and"));
      RCC_ASSIGN_OR_RETURN(auto hi, ParseAdditive());
      // a BETWEEN x AND y  ==>  a >= x AND a <= y
      auto ge = Expr::MakeBinary(BinaryOp::kGe, left->Clone(), std::move(lo));
      auto le = Expr::MakeBinary(BinaryOp::kLe, std::move(left), std::move(hi));
      return Expr::MakeBinary(BinaryOp::kAnd, std::move(ge), std::move(le));
    }
    if (MatchKeyword("in")) {
      RCC_RETURN_NOT_OK(ExpectSymbol("("));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInSubquery;
      e->left = std::move(left);
      RCC_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
      RCC_RETURN_NOT_OK(ExpectSymbol(")"));
      return e;
    }
    struct OpMap {
      const char* sym;
      BinaryOp op;
    };
    static constexpr OpMap kOps[] = {
        {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"<>", BinaryOp::kNe},
        {"!=", BinaryOp::kNe}, {"=", BinaryOp::kEq},  {"<", BinaryOp::kLt},
        {">", BinaryOp::kGt},
    };
    for (const OpMap& m : kOps) {
      if (MatchSymbol(m.sym)) {
        RCC_ASSIGN_OR_RETURN(auto right, ParseAdditive());
        return Expr::MakeBinary(m.op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    RCC_ASSIGN_OR_RETURN(auto left, ParseMultiplicative());
    while (true) {
      if (MatchSymbol("+")) {
        RCC_ASSIGN_OR_RETURN(auto right, ParseMultiplicative());
        left = Expr::MakeBinary(BinaryOp::kAdd, std::move(left),
                                std::move(right));
      } else if (MatchSymbol("-")) {
        RCC_ASSIGN_OR_RETURN(auto right, ParseMultiplicative());
        left = Expr::MakeBinary(BinaryOp::kSub, std::move(left),
                                std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    RCC_ASSIGN_OR_RETURN(auto left, ParsePrimary());
    while (true) {
      if (MatchSymbol("*")) {
        RCC_ASSIGN_OR_RETURN(auto right, ParsePrimary());
        left = Expr::MakeBinary(BinaryOp::kMul, std::move(left),
                                std::move(right));
      } else if (MatchSymbol("/")) {
        RCC_ASSIGN_OR_RETURN(auto right, ParsePrimary());
        left = Expr::MakeBinary(BinaryOp::kDiv, std::move(left),
                                std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    if (t.type == TokenType::kInt) {
      Advance();
      return MakeOffsetLiteral(Value::Int(t.int_value), t.offset);
    }
    if (t.type == TokenType::kDouble) {
      Advance();
      return MakeOffsetLiteral(Value::Double(t.double_value), t.offset);
    }
    if (t.type == TokenType::kString) {
      Advance();
      return MakeOffsetLiteral(Value::Str(t.text), t.offset);
    }
    if (MatchSymbol("-")) {
      // Unary minus on a numeric literal or expression: 0 - x.
      RCC_ASSIGN_OR_RETURN(auto operand, ParsePrimary());
      return Expr::MakeBinary(BinaryOp::kSub,
                              Expr::MakeLiteral(Value::Int(0)),
                              std::move(operand));
    }
    if (MatchSymbol("(")) {
      RCC_ASSIGN_OR_RETURN(auto inner, ParseExpr());
      RCC_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    if (t.type == TokenType::kIdent) {
      if (EqualsIgnoreCase(t.text, "null")) {
        Advance();
        return Expr::MakeLiteral(Value::Null());
      }
      // Function call?
      if (CheckSymbol("(", 1)) {
        std::string fname = Advance().text;
        Advance();  // '('
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kFuncCall;
        e->func = ToLower(fname);
        if (MatchSymbol("*")) {
          e->star = true;
        } else if (!CheckSymbol(")")) {
          while (true) {
            RCC_ASSIGN_OR_RETURN(auto arg, ParseExpr());
            e->args.push_back(std::move(arg));
            if (!MatchSymbol(",")) break;
          }
        }
        RCC_RETURN_NOT_OK(ExpectSymbol(")"));
        return e;
      }
      // Column reference, optionally qualified.
      std::string first = Advance().text;
      if (MatchSymbol(".")) {
        RCC_ASSIGN_OR_RETURN(auto second, ExpectIdent());
        return Expr::MakeColumn(std::move(first), std::move(second));
      }
      return Expr::MakeColumn("", std::move(first));
    }
    return Status::ParseError("unexpected token '" + t.text +
                              "' in expression");
  }

  std::unique_ptr<Expr> MakeOffsetLiteral(Value v, size_t offset) {
    auto e = Expr::MakeLiteral(std::move(v));
    if (opts_.record_literal_offsets) e->literal_offset = offset;
    return e;
  }

  std::vector<Token> tokens_;
  ParseOptions opts_;
  size_t pos_ = 0;
  std::vector<std::unique_ptr<Expr>> join_predicates_;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view sql) {
  return ParseStatement(sql, ParseOptions{});
}

Result<Statement> ParseStatement(std::string_view sql,
                                 const ParseOptions& opts) {
  RCC_ASSIGN_OR_RETURN(auto tokens, Tokenize(sql));
  Parser parser(std::move(tokens), opts);
  return parser.ParseStatementTop();
}

Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view sql) {
  return ParseSelect(sql, ParseOptions{});
}

Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view sql,
                                                const ParseOptions& opts) {
  RCC_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql, opts));
  if (stmt.kind != StatementKind::kSelect) {
    return Status::ParseError("expected a SELECT statement");
  }
  return std::move(stmt.select);
}

}  // namespace rcc
