#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace rcc {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      tok.type = TokenType::kIdent;
      tok.text = std::string(sql.substr(start, i - start));
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text(sql.substr(start, i - start));
      if (is_double) {
        tok.type = TokenType::kDouble;
        tok.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInt;
        tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tok.text = std::move(text);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string s;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            s += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        s += sql[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(s);
      out.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && sql[i + 1] == b;
    };
    tok.type = TokenType::kSymbol;
    if (two('<', '=') || two('>', '=') || two('<', '>') || two('!', '=')) {
      tok.text = std::string(sql.substr(i, 2));
      i += 2;
    } else if (std::string("(),.*+-/=<>").find(c) != std::string::npos) {
      tok.text = std::string(1, c);
      ++i;
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(i));
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace rcc
