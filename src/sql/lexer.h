#ifndef RCC_SQL_LEXER_H_
#define RCC_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace rcc {

/// Token categories produced by the SQL lexer.
enum class TokenType {
  kIdent,    // identifiers and keywords (keywords resolved by the parser)
  kInt,      // integer literal
  kDouble,   // floating-point literal
  kString,   // 'single quoted'
  kSymbol,   // punctuation / operators: ( ) , . * + - / = <> < <= > >=
  kEnd,      // end of input
};

/// One lexical token with its source position (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // identifier/symbol text (identifiers keep case)
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;    // byte offset in the input
};

/// Splits a SQL string into tokens. Comments (`-- ...`) are skipped.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace rcc

#endif  // RCC_SQL_LEXER_H_
