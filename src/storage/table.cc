#include "storage/table.h"

#include "common/logging.h"

namespace rcc {

bool TableKeyLess::operator()(const TableKey& a, const TableKey& b) const {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

void SecondaryIndex::Insert(const TableKey& index_key,
                            const TableKey& primary_key) {
  entries_.emplace(index_key, primary_key);
}

void SecondaryIndex::Erase(const TableKey& index_key,
                           const TableKey& primary_key) {
  auto [lo, hi] = entries_.equal_range(index_key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == primary_key) {
      entries_.erase(it);
      return;
    }
  }
}

std::vector<TableKey> SecondaryIndex::Range(const TableKey* lo,
                                            const TableKey* hi) const {
  std::vector<TableKey> out;
  auto it = lo ? entries_.lower_bound(*lo) : entries_.begin();
  TableKeyLess less;
  for (; it != entries_.end(); ++it) {
    if (hi) {
      // Inclusive upper bound on the prefix covered by *hi.
      TableKey prefix(it->first.begin(),
                      it->first.begin() +
                          std::min(it->first.size(), hi->size()));
      if (less(*hi, prefix)) break;
    }
    out.push_back(it->second);
  }
  return out;
}

Table::Table(std::string name, Schema schema,
             std::vector<size_t> clustered_key)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      clustered_key_(std::move(clustered_key)) {
  RCC_CHECK(!clustered_key_.empty(), "table requires a clustered key");
  for (size_t c : clustered_key_) {
    RCC_CHECK(c < schema_.num_columns(), "clustered key column out of range");
  }
}

TableKey Table::KeyOf(const Row& row) const {
  TableKey key;
  key.reserve(clustered_key_.size());
  for (size_t c : clustered_key_) key.push_back(row[c]);
  return key;
}

Status Table::Insert(const Row& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for table " + name_);
  }
  TableKey key = KeyOf(row);
  auto [it, inserted] = rows_.emplace(key, row);
  if (!inserted) {
    return Status::AlreadyExists("duplicate key in table " + name_ + ": " +
                                 RowToString(key));
  }
  IndexInsert(row, key);
  return Status::OK();
}

Status Table::Update(const Row& row) {
  TableKey key = KeyOf(row);
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFound("no row with key " + RowToString(key) +
                            " in table " + name_);
  }
  IndexErase(it->second, key);
  it->second = row;
  IndexInsert(row, key);
  return Status::OK();
}

void Table::Upsert(const Row& row) {
  TableKey key = KeyOf(row);
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    rows_.emplace(key, row);
    IndexInsert(row, key);
  } else {
    IndexErase(it->second, key);
    it->second = row;
    IndexInsert(row, key);
  }
}

Status Table::Delete(const TableKey& key) {
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFound("no row with key " + RowToString(key) +
                            " in table " + name_);
  }
  IndexErase(it->second, key);
  rows_.erase(it);
  return Status::OK();
}

void Table::Clear() {
  rows_.clear();
  for (auto& idx : indexes_) {
    // Rebuild empty indexes preserving definitions.
    *idx = SecondaryIndex(idx->name(), idx->key_columns());
  }
}

void Table::CopyContentsFrom(const Table& src) {
  RCC_CHECK(schema_.num_columns() == src.schema_.num_columns(),
            "CopyContentsFrom requires matching schemas");
  rows_ = src.rows_;
  indexes_.clear();
  indexes_.reserve(src.indexes_.size());
  for (const auto& idx : src.indexes_) {
    indexes_.push_back(std::make_unique<SecondaryIndex>(*idx));
  }
}

const Row* Table::Get(const TableKey& key) const {
  auto it = rows_.find(key);
  return it == rows_.end() ? nullptr : &it->second;
}

Status Table::CreateSecondaryIndex(std::string index_name,
                                   std::vector<size_t> key_columns) {
  if (FindIndex(index_name) != nullptr) {
    return Status::AlreadyExists("index " + index_name + " already exists");
  }
  for (size_t c : key_columns) {
    if (c >= schema_.num_columns()) {
      return Status::InvalidArgument("index column out of range");
    }
  }
  auto idx = std::make_unique<SecondaryIndex>(std::move(index_name),
                                              std::move(key_columns));
  for (const auto& [pk, row] : rows_) {
    TableKey ik;
    for (size_t c : idx->key_columns()) ik.push_back(row[c]);
    idx->Insert(ik, pk);
  }
  indexes_.push_back(std::move(idx));
  return Status::OK();
}

const SecondaryIndex* Table::FindIndex(std::string_view index_name) const {
  for (const auto& idx : indexes_) {
    if (idx->name() == index_name) return idx.get();
  }
  return nullptr;
}

bool Table::ExceedsUpper(const TableKey& key, const TableKey& hi) {
  // Compare only the prefix covered by hi; inclusive bound.
  size_t n = std::min(key.size(), hi.size());
  for (size_t i = 0; i < n; ++i) {
    int c = key[i].Compare(hi[i]);
    if (c != 0) return c > 0;
  }
  return false;
}

void Table::IndexInsert(const Row& row, const TableKey& pk) {
  for (auto& idx : indexes_) {
    TableKey ik;
    for (size_t c : idx->key_columns()) ik.push_back(row[c]);
    idx->Insert(ik, pk);
  }
}

void Table::IndexErase(const Row& row, const TableKey& pk) {
  for (auto& idx : indexes_) {
    TableKey ik;
    for (size_t c : idx->key_columns()) ik.push_back(row[c]);
    idx->Erase(ik, pk);
  }
}

}  // namespace rcc
