#include "storage/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace rcc {

std::string_view ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

ValueType Value::type() const {
  if (is_null()) return ValueType::kNull;
  if (is_int()) return ValueType::kInt64;
  if (is_double()) return ValueType::kDouble;
  return ValueType::kString;
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
  return std::get<double>(v_);
}

namespace {
int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }
}  // namespace

int Value::Compare(const Value& other) const {
  // NULL sorts first.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  // Numbers compare cross-type by numeric value.
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      int64_t a = AsInt();
      int64_t b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    return Sign(AsDouble() - other.AsDouble());
  }
  if (is_numeric() != other.is_numeric()) {
    // Numbers sort before strings.
    return is_numeric() ? -1 : 1;
  }
  int c = AsString().compare(other.AsString());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kInt64:
      return std::hash<int64_t>{}(AsInt());
    case ValueType::kDouble: {
      double d = AsDouble();
      // Hash integral doubles like their int counterparts so cross-type
      // equality implies equal hashes.
      if (d == std::floor(d) && std::abs(d) < 9.0e15) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

}  // namespace rcc
