#ifndef RCC_STORAGE_VALUE_H_
#define RCC_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"

namespace rcc {

/// Column types supported by the engine. The experiments only need the TPCD
/// subset: integers, decimals (as double), and strings.
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

/// Returns "INT", "DOUBLE", "STRING" or "NULL".
std::string_view ValueTypeName(ValueType t);

/// A typed scalar cell. Values are small and copyable; ordering follows SQL
/// semantics with NULL sorting first (used only for index keys, never for
/// three-valued predicate logic, which the expression evaluator handles).
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : v_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value Str(std::string v) { return Value(Rep(std::move(v))); }

  ValueType type() const;

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const;
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric: true for int/double.
  bool is_numeric() const { return is_int() || is_double(); }

  /// Total order for index keys: NULL < numbers (by numeric value, ints and
  /// doubles compare cross-type) < strings. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// SQL-ish rendering used by examples and tests ("NULL", 42, 3.14, 'abc').
  std::string ToString() const;

  /// Stable hash for hash joins/aggregation.
  size_t Hash() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Rep v) : v_(std::move(v)) {}
  Rep v_;
};

}  // namespace rcc

#endif  // RCC_STORAGE_VALUE_H_
