#ifndef RCC_STORAGE_SCHEMA_H_
#define RCC_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "storage/value.h"

namespace rcc {

/// A named, typed column.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;
};

/// An ordered list of columns. Column names are unique within a schema and
/// matched case-insensitively.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with the given (case-insensitive) name.
  std::optional<size_t> FindColumn(std::string_view name) const;

  /// Schema consisting of the columns at `indexes`, in that order.
  Schema Project(const std::vector<size_t>& indexes) const;

  /// "(a INT, b STRING)" rendering for diagnostics.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// A tuple; cell i conforms to schema column i.
using Row = std::vector<Value>;

/// Renders "(v1, v2, ...)".
std::string RowToString(const Row& row);

}  // namespace rcc

#endif  // RCC_STORAGE_SCHEMA_H_
