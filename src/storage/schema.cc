#include "storage/schema.h"

#include "common/strings.h"

namespace rcc {

std::optional<size_t> Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

Schema Schema::Project(const std::vector<size_t>& indexes) const {
  std::vector<Column> cols;
  cols.reserve(indexes.size());
  for (size_t i : indexes) cols.push_back(columns_[i]);
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace rcc
