#ifndef RCC_STORAGE_TABLE_H_
#define RCC_STORAGE_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"

namespace rcc {

/// Composite key: one Value per clustered-key (or index-key) column, compared
/// lexicographically.
using TableKey = std::vector<Value>;

/// Lexicographic ordering over composite keys. A shorter key that is a prefix
/// of a longer one sorts first, which gives prefix range scans for free.
struct TableKeyLess {
  bool operator()(const TableKey& a, const TableKey& b) const;
};

/// A secondary index mapping index-key values to primary (clustered) keys.
class SecondaryIndex {
 public:
  SecondaryIndex(std::string name, std::vector<size_t> key_columns)
      : name_(std::move(name)), key_columns_(std::move(key_columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }

  void Insert(const TableKey& index_key, const TableKey& primary_key);
  void Erase(const TableKey& index_key, const TableKey& primary_key);

  /// Primary keys of all rows whose index key is in [lo, hi] (inclusive;
  /// missing bound = open). Cost: O(log n + matches).
  std::vector<TableKey> Range(const TableKey* lo, const TableKey* hi) const;

  /// Number of entries (== table rows).
  size_t size() const { return entries_.size(); }

 private:
  std::string name_;
  std::vector<size_t> key_columns_;
  std::multimap<TableKey, TableKey, TableKeyLess> entries_;
};

/// An in-memory heap table organized by a clustered (primary) key, mirroring
/// the paper's setup (Customer clustered on c_custkey, Orders on
/// (o_custkey, o_orderkey), plus optional secondary indexes).
class Table {
 public:
  /// `clustered_key` lists column positions forming the unique primary key.
  Table(std::string name, Schema schema, std::vector<size_t> clustered_key);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<size_t>& clustered_key() const { return clustered_key_; }
  size_t num_rows() const { return rows_.size(); }

  /// Extracts this table's primary key from a full row.
  TableKey KeyOf(const Row& row) const;

  /// Inserts a new row; fails with AlreadyExists on duplicate primary key.
  Status Insert(const Row& row);
  /// Replaces the row with the same primary key; fails with NotFound.
  Status Update(const Row& row);
  /// Inserts or replaces.
  void Upsert(const Row& row);
  /// Deletes by primary key; fails with NotFound.
  Status Delete(const TableKey& key);
  /// Removes all rows (indexes included).
  void Clear();

  /// Replaces this table's rows and secondary indexes with deep copies of
  /// `src`'s. Schemas must be identical; used by the copy-on-write view
  /// clones on the MVCC delivery path.
  void CopyContentsFrom(const Table& src);

  /// Point lookup by primary key; nullptr if absent.
  const Row* Get(const TableKey& key) const;

  /// Direct access to the clustered storage (key -> row, in key order); used
  /// by pull-based scan iterators.
  const std::map<TableKey, Row, TableKeyLess>& rows() const { return rows_; }

  /// Adds a secondary index over `key_columns`, backfilling existing rows.
  Status CreateSecondaryIndex(std::string index_name,
                              std::vector<size_t> key_columns);
  const SecondaryIndex* FindIndex(std::string_view index_name) const;
  const std::vector<std::unique_ptr<SecondaryIndex>>& secondary_indexes()
      const {
    return indexes_;
  }

  /// Full-scan iteration in clustered-key order.
  /// The callback returns false to stop early.
  template <typename Fn>
  void Scan(Fn&& fn) const {
    for (const auto& [key, row] : rows_) {
      if (!fn(row)) break;
    }
  }

  /// Clustered-key range scan over [lo, hi] (inclusive; null = open).
  /// Bounds may be key prefixes.
  template <typename Fn>
  void RangeScan(const TableKey* lo, const TableKey* hi, Fn&& fn) const {
    auto it = lo ? rows_.lower_bound(*lo) : rows_.begin();
    for (; it != rows_.end(); ++it) {
      if (hi && ExceedsUpper(it->first, *hi)) break;
      if (!fn(it->second)) break;
    }
  }

  /// True when `key` is beyond the inclusive (possibly prefix) bound `hi`;
  /// shared with pull-based scan iterators.
  static bool ExceedsUpper(const TableKey& key, const TableKey& hi);

 private:

  void IndexInsert(const Row& row, const TableKey& pk);
  void IndexErase(const Row& row, const TableKey& pk);

  std::string name_;
  Schema schema_;
  std::vector<size_t> clustered_key_;
  std::map<TableKey, Row, TableKeyLess> rows_;
  std::vector<std::unique_ptr<SecondaryIndex>> indexes_;
};

}  // namespace rcc

#endif  // RCC_STORAGE_TABLE_H_
