#ifndef RCC_FLEET_ROUTER_H_
#define RCC_FLEET_ROUTER_H_

#include <string>
#include <utility>
#include <vector>

#include "core/statement_router.h"
#include "obs/metrics.h"

namespace rcc {
namespace fleet {

class FleetSystem;

/// C&C-aware fleet dispatch (DESIGN.md §16). For each statement the router
/// derives the constraint's per-table currency requirements (one reference
/// resolution on the anchor — constraint normalization binds base tables,
/// which every node shadows identically), probes every node's delivered
/// currency per requirement (certified heartbeat of the region materializing
/// the table, the session's timeline floor, the degrade mode), and
/// dispatches to the cheapest eligible node by the optimizer's Eq. 1 plan
/// cost (ties to the lowest node id). A failed attempt falls through to the
/// next-cheapest eligible peer; when no cache node is eligible (or all
/// eligible ones failed) the statement runs as an all-remote plan on the
/// anchor — the backend tier. Deadline expiry never falls through: the
/// budget is spent, retrying elsewhere only adds latency.
///
/// Eligibility per probe:
///   heartbeat known (certified — quarantine/resync withdraws it)
///   AND not below the timeline floor
///   AND (heartbeat > now - bound OR degrade mode is ALWAYS)
/// A node lacking a view over a constrained table fails coverage: its probe
/// records region 0 / heartbeat unknown / ineligible. The conformance
/// oracle re-derives every probe and the choice from the recorded history
/// (rules route-heartbeat / route-verdict / route-choice / route-serve-node).
///
/// Every dispatch attempt records a RouteObservation under a fresh query id
/// *before* executing, and the execution reuses that id
/// (PreparedExecOptions::history_query_id), so one attempt's route, guard,
/// serve and answer events correlate.
class FleetRouter : public StatementRouter {
 public:
  explicit FleetRouter(FleetSystem* fleet);

  /// The raw history sink (the recorder itself, not a node-tagged wrapper:
  /// route observations carry their own node). nullptr stops recording.
  void SetHistorySink(HistorySink* sink) { sink_ = sink; }

  Result<CacheQueryOutcome> RouteSelect(
      const SelectStmt& stmt, const RoutedStatementOptions& opts) override;

 private:
  /// Lazily resolved per-node instruments (rcc.fleet.node.<id>.routed).
  obs::Counter* RoutedCounter(int node);

  FleetSystem* fleet_;
  HistorySink* sink_ = nullptr;
  obs::Counter* fallthroughs_ = nullptr;
  obs::Counter* backend_serves_ = nullptr;
  std::vector<obs::Counter*> routed_;  // index = node id
};

}  // namespace fleet
}  // namespace rcc

#endif  // RCC_FLEET_ROUTER_H_
