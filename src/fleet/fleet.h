#ifndef RCC_FLEET_FLEET_H_
#define RCC_FLEET_FLEET_H_

#include <memory>
#include <vector>

#include "core/session.h"
#include "core/system.h"
#include "workload/bookstore.h"

namespace rcc {
namespace fleet {

class FleetRouter;

/// One cache node of the fleet: which bookstore views it materializes and
/// how its distribution agents propagate. Node ids are 1-based; node 1 is
/// the anchor (the RccSystem's own cache, and the execution target of
/// backend-tier dispatches).
struct FleetNodeConfig {
  int node = 1;
  /// Propagation cadence of the node's regions (heterogeneous across the
  /// fleet: a fast small node and a slow complete node deliver different
  /// currencies for the same query).
  SimTimeMs update_interval = 8000;
  SimTimeMs update_delay = 3000;
  /// View subset. Books and Sales share one region (node*100+1, so queries
  /// can require Books/Sales consistency on any node that has both);
  /// Reviews lives in its own (node*100+2).
  bool books = true;
  bool sales = true;
  bool reviews = true;
  /// Backend shard this node's remote channel and replication pull from.
  /// Node 1 must use shard 0 (the anchor backend). Shards mirror the full
  /// schema and data — sharding here models fan-out, not partitioning.
  int shard = 0;
};

struct FleetConfig {
  uint64_t seed = 42;
  CostParams costs;
  /// Node ids must be exactly 1..N in order.
  std::vector<FleetNodeConfig> nodes;
  int backend_shards = 1;
};

/// Region-id scheme: fleet-unique cids keep the conformance oracle's
/// per-region state per-node for free (DESIGN.md §16).
inline RegionId BooksRegion(int node) { return node * 100 + 1; }
inline RegionId ReviewsRegion(int node) { return node * 100 + 2; }
inline int NodeOfRegion(RegionId cid) { return cid / 100; }

/// N CacheDbms nodes with heterogeneous view sets and propagation intervals
/// in front of an (optionally mirrored-sharded) backend, sharing one virtual
/// clock and one discrete-event scheduler. The anchor RccSystem contributes
/// node 1 and the primary backend; extra nodes and shards hang off the same
/// scheduler so one AdvanceTo drives every agent in the fleet.
class FleetSystem {
 public:
  explicit FleetSystem(FleetConfig config);
  ~FleetSystem();

  FleetSystem(const FleetSystem&) = delete;
  FleetSystem& operator=(const FleetSystem&) = delete;

  int node_count() const { return static_cast<int>(config_.nodes.size()); }
  /// 1-based; nullptr for out-of-range ids.
  CacheDbms* node(int node);
  const FleetNodeConfig* node_config(int node) const;
  RccSystem* anchor() { return &anchor_; }
  /// Shard 0 is the anchor backend; higher indices are mirrors.
  BackendServer* shard(int index);
  int shard_count() const { return 1 + static_cast<int>(extra_shards_.size()); }
  FleetRouter* router() { return router_.get(); }

  SimTimeMs Now() const { return anchor_.Now(); }
  void AdvanceTo(SimTimeMs t) { anchor_.AdvanceTo(t); }
  void AdvanceBy(SimTimeMs delta) { anchor_.AdvanceBy(delta); }

  /// An anchor session with the fleet router installed: every plain SELECT
  /// it executes dispatches across the fleet.
  std::unique_ptr<Session> CreateSession();

  /// Loads the bookstore schema + data on every shard and builds every
  /// node's shadow catalog.
  Status LoadBookstore(const BookstoreConfig& config);

  /// Defines each node's regions and view subset per its FleetNodeConfig.
  /// Call after LoadBookstore; install the history sink first so initial
  /// populations are recorded.
  Status SetupBookstore();

  /// Points every node at `sink` through a per-node NodeTaggingSink, and the
  /// router at `sink` directly (route observations carry their own node).
  /// nullptr stops recording everywhere.
  void SetHistorySink(HistorySink* sink);

  /// Installs replication faults on one node (its regions fault
  /// independently of every other node's: the injector seeds with
  /// config.seed + region id and region ids are fleet-unique).
  void SetNodeReplicationFaults(int node, const ReplicationFaultConfig& config);

  /// Concurrent-batch mode on every node cache (counted, like
  /// CacheDbms::BeginConcurrentBatch). Required when routed statements run
  /// from multiple threads — e.g. an RccServer dispatching through the
  /// router — since a routed statement executes on whichever node wins.
  void BeginConcurrentBatch();
  void EndConcurrentBatch();

  /// Applies one update transaction to every shard (mirrored sharding keeps
  /// shard data identical; commit timestamps may differ per shard). Returns
  /// the anchor shard's timestamp. With one shard this is exactly
  /// BackendServer::ExecuteTransaction.
  Result<TxnTimestamp> ExecuteMirrored(std::vector<RowOp> ops);

 private:
  FleetConfig config_;
  RccSystem anchor_;
  std::vector<std::unique_ptr<BackendServer>> extra_shards_;
  /// Nodes 2..N (node 1 is anchor_.cache()).
  std::vector<std::unique_ptr<CacheDbms>> extra_nodes_;
  std::vector<std::unique_ptr<NodeTaggingSink>> tag_sinks_;
  std::unique_ptr<FleetRouter> router_;
};

}  // namespace fleet
}  // namespace rcc

#endif  // RCC_FLEET_FLEET_H_
