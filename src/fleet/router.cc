#include "fleet/router.h"

#include <algorithm>

#include "fleet/fleet.h"

namespace rcc {
namespace fleet {

namespace {

/// One per-table currency requirement of the statement's normalized
/// constraint: the router probes each node once per distinct (table, bound).
struct Requirement {
  std::string table;
  SimTimeMs bound_ms = 0;
};

std::vector<Requirement> RequirementsOf(const QueryPlan& plan) {
  std::vector<Requirement> reqs;
  for (const CcTuple& tuple : plan.resolved.constraint.tuples) {
    for (InputOperandId oid : tuple.operands) {
      if (oid >= plan.resolved.operands.size()) continue;
      const TableDef* table = plan.resolved.operands[oid].table;
      if (table == nullptr) continue;
      bool seen = false;
      for (const Requirement& r : reqs) {
        if (r.table == table->name && r.bound_ms == tuple.bound_ms) {
          seen = true;
          break;
        }
      }
      if (!seen) reqs.push_back({table->name, tuple.bound_ms});
    }
  }
  return reqs;
}

}  // namespace

FleetRouter::FleetRouter(FleetSystem* fleet) : fleet_(fleet) {
  obs::MetricsRegistry& m = fleet_->anchor()->metrics();
  fallthroughs_ = m.counter("rcc.fleet.fallthroughs");
  backend_serves_ = m.counter("rcc.fleet.backend_serves");
  // Resolved up front (the topology is fixed at construction), so RouteSelect
  // records lock-free from any worker thread.
  routed_.resize(fleet_->node_count() + 1, nullptr);
  for (int node = 1; node <= fleet_->node_count(); ++node) {
    routed_[node] = m.counter(
        obs::MetricsRegistry::NodeMetricName("rcc.fleet", node, "routed"));
  }
}

obs::Counter* FleetRouter::RoutedCounter(int node) { return routed_[node]; }

Result<CacheQueryOutcome> FleetRouter::RouteSelect(
    const SelectStmt& stmt, const RoutedStatementOptions& opts) {
  const int n = fleet_->node_count();
  CacheDbms* anchor_cache = fleet_->node(1);
  // Reference resolution on the anchor: the normalized constraint and its
  // operand → base-table binding are node-independent (every node shadows
  // the same backend schema; only view sets differ).
  RCC_ASSIGN_OR_RETURN(QueryPlan ref_plan, anchor_cache->Prepare(stmt));
  const std::vector<Requirement> reqs = RequirementsOf(ref_plan);

  // Probe every node's delivered currency per requirement, as of `now`. A
  // statement with no currency clause has no requirements: every node is
  // vacuously eligible and the choice is pure cost.
  auto probe_fleet = [&](SimTimeMs now) {
    std::vector<RouteProbe> probes;
    for (int node = 1; node <= n; ++node) {
      CacheDbms* cache = fleet_->node(node);
      for (const Requirement& req : reqs) {
        RouteProbe p;
        p.node = node;
        p.bound_ms = req.bound_ms;
        p.floor_ms = opts.timeline_floor;
        std::vector<const ViewDef*> views =
            cache->catalog().ViewsOnTable(req.table);
        if (views.empty()) {
          // Coverage failure: no materialized view over the constrained
          // table, so there is no region whose currency could satisfy it.
          p.region = kBackendRegion;
        } else {
          p.region = views.front()->region;
          std::optional<SimTimeMs> hb = cache->LocalHeartbeat(p.region);
#ifdef RCC_FLEET_MUTATE
          // Planted bug: the highest-numbered node's probes fall back to the
          // raw snapshot heartbeat when certification was withdrawn
          // (quarantine/resync), so the router keeps dispatching to a node
          // whose own guards can no longer back the freshness claim. The
          // oracle's route-heartbeat rule re-derives the certified state from
          // the install + health streams and rejects the probe.
          if (!hb.has_value() && node == n) {
            const CurrencyRegion* region = cache->region(p.region);
            if (region != nullptr) hb = region->Snapshot()->heartbeat;
          }
#endif
          p.heartbeat_known = hb.has_value();
          p.heartbeat = hb.value_or(-1);
          p.eligible =
              p.heartbeat_known &&
              !(p.floor_ms >= 0 && p.heartbeat < p.floor_ms) &&
              (p.heartbeat > now - p.bound_ms ||
               opts.degrade == DegradeMode::kAlways);
        }
        probes.push_back(p);
      }
    }
    return probes;
  };

  auto record_route = [&](int node, bool backend_tier, SimTimeMs now,
                          const std::vector<RouteProbe>& probes) -> uint64_t {
    if (sink_ == nullptr) return 0;
    uint64_t qid = sink_->BeginQuery(now);
    RouteObservation ro;
    ro.query_id = qid;
    ro.at = now;
    ro.node = node;
    ro.backend_tier = backend_tier;
    ro.degrade_mode = static_cast<int>(opts.degrade);
    ro.probes = probes;
    sink_->OnRoute(ro);
    return qid;
  };

  CacheDbms::PreparedExecOptions eo;
  eo.timeline_floor = opts.timeline_floor;
  eo.degrade = opts.degrade;
  eo.session_tag = opts.session_tag;
  eo.deadline = opts.deadline;
  eo.shed_hint = opts.shed_hint;

  // Fall-through ladder: cheapest eligible node, then peers, then backend.
  // Probes are re-read before *every* attempt — a failed attempt may have
  // advanced the virtual clock (retry backoff runs the delivery scheduler in
  // serial mode), so replaying the first attempt's observations would record
  // heartbeats the install stream has since superseded. Each route line must
  // reflect the fleet at the moment it was dispatched.
  std::vector<bool> tried(n + 1, false);
  for (;;) {
    const SimTimeMs now = fleet_->Now();
    std::vector<RouteProbe> probes = probe_fleet(now);
    std::vector<bool> eligible(n + 1, true);
    for (const RouteProbe& p : probes) {
      if (!p.eligible) eligible[p.node] = false;
    }
    // Price the eligible untried nodes with the same Eq. 1 cost model the
    // single-node optimizer uses; strict < keeps ties on the lowest node id.
    int best = 0;
    double best_cost = 0;
    QueryPlan best_plan;
    for (int node = 1; node <= n; ++node) {
      if (tried[node] || !eligible[node]) continue;
      Result<QueryPlan> plan = fleet_->node(node)->Prepare(stmt);
      if (!plan.ok()) continue;  // treat an unplannable node as ineligible
      if (best == 0 || plan->est_cost < best_cost) {
        best = node;
        best_cost = plan->est_cost;
        best_plan = std::move(plan).value();
      }
    }
    if (best == 0) break;
    eo.history_query_id = record_route(best, /*backend_tier=*/false, now,
                                       probes);
    RoutedCounter(best)->Add();
    Result<CacheQueryOutcome> out =
        fleet_->node(best)->ExecutePrepared(best_plan, eo);
    if (out.ok()) return out;
    // An expired deadline never falls through: the budget is spent, and a
    // retry elsewhere only delays the DeadlineExceeded the client must see.
    if (out.status().IsDeadlineExceeded()) return out.status();
    fallthroughs_->Add();
    tried[best] = true;
  }

  // Backend tier: an all-remote plan on the anchor (view matching off
  // forces every operand to a backend fetch, which is always current).
  OptimizerOptions oo = anchor_cache->default_options();
  oo.enable_view_matching = false;
  RCC_ASSIGN_OR_RETURN(QueryPlan remote_plan, anchor_cache->Prepare(stmt, oo));
  const SimTimeMs now = fleet_->Now();
  eo.history_query_id =
      record_route(1, /*backend_tier=*/true, now, probe_fleet(now));
  backend_serves_->Add();
  return anchor_cache->ExecutePrepared(remote_plan, eo);
}

}  // namespace fleet
}  // namespace rcc
