#include "fleet/fleet.h"

#include <utility>

#include "fleet/router.h"

namespace rcc {
namespace fleet {

namespace {

/// Mirrors the anchor backend's full schema and data onto `shard` (mirrored
/// sharding: every shard can answer every remote query, so a node's remote
/// channel is just its shard).
Status MirrorBackend(BackendServer* source, BackendServer* shard) {
  for (const std::string& name : source->catalog().TableNames()) {
    const TableDef* def = source->catalog().FindTable(name);
    if (def == nullptr) continue;
    RCC_RETURN_NOT_OK(shard->CreateTable(*def));
    const Table* master = source->table(name);
    if (master == nullptr) continue;
    std::vector<Row> rows;
    master->Scan([&rows](const Row& row) {
      rows.push_back(row);
      return true;
    });
    RCC_RETURN_NOT_OK(shard->BulkLoad(name, rows));
  }
  return Status::OK();
}

/// Defines one node's bookstore regions and view subset. The same view
/// names recur on every node — catalogs are per-node, and queries name base
/// tables, never views.
Status SetupNodeBookstore(CacheDbms* cache, const FleetNodeConfig& cfg) {
  if (cfg.books || cfg.sales) {
    RegionDef r1;
    r1.cid = BooksRegion(cfg.node);
    r1.update_interval = cfg.update_interval;
    r1.update_delay = cfg.update_delay;
    r1.heartbeat_interval = 1000;
    RCC_RETURN_NOT_OK(cache->DefineRegion(r1));
  }
  if (cfg.reviews) {
    RegionDef r2;
    r2.cid = ReviewsRegion(cfg.node);
    r2.update_interval = cfg.update_interval;
    r2.update_delay = cfg.update_delay;
    r2.heartbeat_interval = 1000;
    RCC_RETURN_NOT_OK(cache->DefineRegion(r2));
  }
  if (cfg.books) {
    ViewDef books_copy;
    books_copy.name = "BooksCopy";
    books_copy.source_table = "Books";
    books_copy.columns = {"isbn", "title", "price", "stock"};
    books_copy.region = BooksRegion(cfg.node);
    RCC_RETURN_NOT_OK(cache->CreateView(books_copy));
  }
  if (cfg.sales) {
    ViewDef sales_copy;
    sales_copy.name = "SalesCopy";
    sales_copy.source_table = "Sales";
    sales_copy.columns = {"sale_id", "isbn", "year", "amount"};
    sales_copy.region = BooksRegion(cfg.node);
    sales_copy.secondary_indexes.push_back(
        IndexDef{"idx_salescopy_isbn", {"isbn"}});
    RCC_RETURN_NOT_OK(cache->CreateView(sales_copy));
  }
  if (cfg.reviews) {
    ViewDef reviews_copy;
    reviews_copy.name = "ReviewsCopy";
    reviews_copy.source_table = "Reviews";
    reviews_copy.columns = {"isbn", "review_id", "rating"};
    reviews_copy.region = ReviewsRegion(cfg.node);
    RCC_RETURN_NOT_OK(cache->CreateView(reviews_copy));
  }
  return Status::OK();
}

}  // namespace

FleetSystem::FleetSystem(FleetConfig config)
    : config_(std::move(config)),
      anchor_(SystemConfig{config_.costs, config_.seed}) {
  if (config_.nodes.empty()) config_.nodes.push_back(FleetNodeConfig{});
  // Normalize ids to 1..N (callers list nodes in order; the id field is
  // authoritative for region naming, so it must match the position).
  for (size_t i = 0; i < config_.nodes.size(); ++i) {
    config_.nodes[i].node = static_cast<int>(i) + 1;
  }
  config_.nodes[0].shard = 0;  // the anchor cache fronts the anchor backend
  for (int s = 1; s < config_.backend_shards; ++s) {
    extra_shards_.push_back(
        std::make_unique<BackendServer>(anchor_.clock(), config_.costs));
  }
  for (size_t i = 1; i < config_.nodes.size(); ++i) {
    BackendServer* backend = shard(config_.nodes[i].shard);
    if (backend == nullptr) backend = anchor_.backend();
    auto cache = std::make_unique<CacheDbms>(backend, anchor_.scheduler(),
                                             config_.costs);
    // One registry fleet-wide: per-cache counters aggregate across nodes;
    // per-node visibility comes from the router's rcc.fleet.node.* names.
    cache->SetMetricsRegistry(&anchor_.metrics());
    extra_nodes_.push_back(std::move(cache));
  }
  router_ = std::make_unique<FleetRouter>(this);
}

FleetSystem::~FleetSystem() = default;

CacheDbms* FleetSystem::node(int node) {
  if (node == 1) return anchor_.cache();
  int idx = node - 2;
  if (idx < 0 || idx >= static_cast<int>(extra_nodes_.size())) return nullptr;
  return extra_nodes_[idx].get();
}

const FleetNodeConfig* FleetSystem::node_config(int node) const {
  int idx = node - 1;
  if (idx < 0 || idx >= static_cast<int>(config_.nodes.size())) return nullptr;
  return &config_.nodes[idx];
}

BackendServer* FleetSystem::shard(int index) {
  if (index == 0) return anchor_.backend();
  int idx = index - 1;
  if (idx < 0 || idx >= static_cast<int>(extra_shards_.size())) return nullptr;
  return extra_shards_[idx].get();
}

std::unique_ptr<Session> FleetSystem::CreateSession() {
  std::unique_ptr<Session> session = anchor_.CreateSession();
  session->set_router(router_.get());
  return session;
}

Status FleetSystem::LoadBookstore(const BookstoreConfig& config) {
  RCC_RETURN_NOT_OK(rcc::LoadBookstore(&anchor_, config));
  for (auto& s : extra_shards_) {
    RCC_RETURN_NOT_OK(MirrorBackend(anchor_.backend(), s.get()));
  }
  for (auto& cache : extra_nodes_) {
    RCC_RETURN_NOT_OK(cache->CreateShadow());
  }
  return Status::OK();
}

Status FleetSystem::SetupBookstore() {
  for (const FleetNodeConfig& cfg : config_.nodes) {
    CacheDbms* cache = node(cfg.node);
    if (cache == nullptr) continue;
    RCC_RETURN_NOT_OK(SetupNodeBookstore(cache, cfg));
  }
  return Status::OK();
}

void FleetSystem::SetHistorySink(HistorySink* sink) {
  // Detach every consumer of the old wrappers before destroying them.
  anchor_.SetHistorySink(nullptr);
  for (auto& cache : extra_nodes_) cache->SetHistorySink(nullptr);
  router_->SetHistorySink(nullptr);
  tag_sinks_.clear();
  if (sink == nullptr) return;
  for (int n = 1; n <= node_count(); ++n) {
    tag_sinks_.push_back(std::make_unique<NodeTaggingSink>(sink, n));
  }
  // The anchor wires commits and cache events; extra nodes only their cache
  // events (the commit stream is backend-global and must be recorded once).
  anchor_.SetHistorySink(tag_sinks_[0].get());
  for (size_t i = 0; i < extra_nodes_.size(); ++i) {
    extra_nodes_[i]->SetHistorySink(tag_sinks_[i + 1].get());
  }
  router_->SetHistorySink(sink);
}

void FleetSystem::SetNodeReplicationFaults(int node_id,
                                           const ReplicationFaultConfig& config) {
  CacheDbms* cache = node(node_id);
  if (cache != nullptr) cache->SetReplicationFaults(config);
}

void FleetSystem::BeginConcurrentBatch() {
  for (int n = 1; n <= node_count(); ++n) node(n)->BeginConcurrentBatch();
}

void FleetSystem::EndConcurrentBatch() {
  for (int n = 1; n <= node_count(); ++n) node(n)->EndConcurrentBatch();
}

Result<TxnTimestamp> FleetSystem::ExecuteMirrored(std::vector<RowOp> ops) {
  for (auto& s : extra_shards_) {
    std::vector<RowOp> copy = ops;
    RCC_RETURN_NOT_OK(s->ExecuteTransaction(std::move(copy)).status());
  }
  return anchor_.backend()->ExecuteTransaction(std::move(ops));
}

}  // namespace fleet
}  // namespace rcc
