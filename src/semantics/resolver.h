#ifndef RCC_SEMANTICS_RESOLVER_H_
#define RCC_SEMANTICS_RESOLVER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "semantics/constraint.h"
#include "sql/ast.h"

namespace rcc {

/// One resolved base-table instance of a query.
struct ResolvedOperand {
  InputOperandId id = 0;
  /// Alias visible in the query (unique-ified for expanded views).
  std::string alias;
  /// Base table (catalog definition; outlives the query).
  const TableDef* table = nullptr;
};

/// A fully resolved query: logical views expanded, every base-table instance
/// assigned an input-operand id, the raw C&C constraint extracted from all
/// currency clauses, and its normalized form (paper §3.2.1).
struct ResolvedQuery {
  /// View-expanded statement; TableRef::resolved_operand is filled in.
  std::unique_ptr<SelectStmt> stmt;
  /// Indexed by InputOperandId.
  std::vector<ResolvedOperand> operands;
  /// Union of all currency clauses, with aliases resolved to operand ids.
  CcConstraint raw_constraint;
  /// The query's required consistency property.
  NormalizedConstraint constraint;
  /// True when no block carried a currency clause, i.e. the normalized
  /// constraint is entirely the tight default.
  bool used_default_constraint = false;

  /// Operand ids appearing beneath one FROM item (the operand itself, or all
  /// operands of a derived table).
  static std::vector<InputOperandId> OperandsOf(const TableRef& ref);
};

/// Resolves a parsed SELECT against `catalog`:
///  - expands logical views referenced in FROM clauses (recursively);
///  - verifies every base table exists;
///  - assigns operand ids depth-first;
///  - resolves currency-clause targets using WHERE-clause scoping rules
///    (current block first, then enclosing blocks; paper §2.1);
///  - extracts + normalizes the C&C constraint.
Result<ResolvedQuery> ResolveQuery(const SelectStmt& stmt,
                                   const Catalog& catalog);

}  // namespace rcc

#endif  // RCC_SEMANTICS_RESOLVER_H_
