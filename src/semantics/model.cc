#include "semantics/model.h"

#include <algorithm>

#include "common/strings.h"

namespace rcc {
namespace semantics {

namespace {

/// True when transaction `txn` modifies `table`.
bool Touches(const CommittedTxn& txn, std::string_view table) {
  for (const RowOp& op : txn.ops) {
    if (EqualsIgnoreCase(op.table, table)) return true;
  }
  return false;
}

}  // namespace

SimTimeMs XTime(const UpdateLog& log, std::string_view table,
                TxnTimestamp as_of) {
  SimTimeMs x = 0;
  for (size_t i = 0; i < log.size(); ++i) {
    const CommittedTxn& txn = log.at(i);
    if (txn.id > as_of) break;
    if (Touches(txn, table)) x = txn.commit_time;
  }
  return x;
}

std::optional<SimTimeMs> StalePoint(const UpdateLog& log,
                                    std::string_view table,
                                    TxnTimestamp as_of) {
  for (size_t i = 0; i < log.size(); ++i) {
    const CommittedTxn& txn = log.at(i);
    if (txn.id <= as_of) continue;
    if (Touches(txn, table)) return txn.commit_time;
  }
  return std::nullopt;
}

SimTimeMs CurrencyOf(const UpdateLog& log, std::string_view table,
                     TxnTimestamp as_of, SimTimeMs now) {
  auto stale = StalePoint(log, table, as_of);
  if (!stale.has_value()) return 0;
  return now > *stale ? now - *stale : 0;
}

bool MutuallyConsistent(const UpdateLog& log,
                        const std::vector<CopyState>& copies) {
  for (const CopyState& older : copies) {
    for (const CopyState& newer : copies) {
      if (older.as_of >= newer.as_of) continue;
      // A transaction in (older.as_of, newer.as_of] touching older.table
      // means the older copy misses an update the newer one may reflect.
      for (size_t i = 0; i < log.size(); ++i) {
        const CommittedTxn& txn = log.at(i);
        if (txn.id <= older.as_of) continue;
        if (txn.id > newer.as_of) break;
        if (Touches(txn, older.table)) return false;
      }
    }
  }
  return true;
}

SimTimeMs Distance(const UpdateLog& log, const CopyState& a,
                   const CopyState& b) {
  // Order so that xa <= xb; the distance is how stale the older copy is at
  // the younger copy's transaction time.
  const CopyState& older = a.as_of <= b.as_of ? a : b;
  const CopyState& newer = a.as_of <= b.as_of ? b : a;
  SimTimeMs tm = XTime(log, newer.table, newer.as_of);
  return CurrencyOf(log, older.table, older.as_of, tm);
}

SimTimeMs GroupDistance(const UpdateLog& log,
                        const std::vector<CopyState>& copies) {
  SimTimeMs max_d = 0;
  for (size_t i = 0; i < copies.size(); ++i) {
    for (size_t j = i + 1; j < copies.size(); ++j) {
      max_d = std::max(max_d, Distance(log, copies[i], copies[j]));
    }
  }
  return max_d;
}

}  // namespace semantics
}  // namespace rcc
