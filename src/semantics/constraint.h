#ifndef RCC_SEMANTICS_CONSTRAINT_H_
#define RCC_SEMANTICS_CONSTRAINT_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"

namespace rcc {

/// Identifies one *input operand*: a base-table instance appearing in the
/// (view-expanded) query. Two references to the same table are distinct
/// operands, matching the paper's definition of a normalized constraint.
using InputOperandId = uint32_t;

/// One tuple <b, S, K> of a C&C constraint: currency bound b over the
/// consistency class S, optionally partitioned into consistency groups by
/// the columns K (paper §2.1: "a C&C constraint in a query consists of a set
/// of triples").
struct CcTuple {
  /// Maximum acceptable staleness of the operands in `operands`.
  SimTimeMs bound_ms = 0;
  /// The consistency class: operands that must be mutually consistent.
  std::set<InputOperandId> operands;
  /// Grouping columns: rows that agree on these columns must come from one
  /// snapshot, but different groups may come from different snapshots.
  /// Empty = the whole class forms a single group (strictest).
  std::vector<std::string> by_columns;

  std::string ToString() const;
};

/// A C&C constraint: a set of tuples. Constraints from different clauses of
/// a multi-block query combine by set union (paper §3.2.1).
struct CcConstraint {
  std::vector<CcTuple> tuples;

  /// Appends all tuples of `other`.
  void UnionWith(const CcConstraint& other);

  /// True when no tuple exists (query had no currency clause anywhere).
  bool empty() const { return tuples.empty(); }

  std::string ToString() const;
};

/// A constraint in the paper's *normalized form*: all operands reference
/// base-table instances, and the operand sets are pairwise disjoint. Produced
/// by `NormalizeConstraint`.
struct NormalizedConstraint {
  std::vector<CcTuple> tuples;

  /// Tuple covering `op`, or nullptr (operands covered by the default tuple
  /// always have one).
  const CcTuple* TupleFor(InputOperandId op) const;

  /// The currency bound applying to `op`; 0 (tightest) when uncovered.
  SimTimeMs BoundFor(InputOperandId op) const;

  /// True if `a` and `b` are required to be mutually consistent.
  bool RequiresConsistent(InputOperandId a, InputOperandId b) const;

  std::string ToString() const;
};

/// Normalizes a raw constraint over `num_operands` operands:
///  1. operands referencing expanded views were already replaced by their
///     base operands during resolution;
///  2. tuples with overlapping operand sets are merged repeatedly — the
///     merged bound is the minimum of the inputs (operands from one snapshot
///     are equally stale, so the tighter bound governs);
///  3. grouping columns survive a merge only when identical on both sides —
///     otherwise they are dropped, which is strictly tighter and thus safe;
///  4. operands not covered by any tuple get the *default* requirement:
///     bound 0 and membership in one shared consistency class, i.e. queries
///     (or inputs) without a currency clause retain traditional semantics
///     and are served from the back-end.
NormalizedConstraint NormalizeConstraint(const CcConstraint& raw,
                                         uint32_t num_operands);

}  // namespace rcc

#endif  // RCC_SEMANTICS_CONSTRAINT_H_
