#include "semantics/resolver.h"

#include <functional>

#include "common/strings.h"
#include "sql/parser.h"

namespace rcc {

namespace {

constexpr int kMaxViewDepth = 16;

/// Invokes `fn` on every subquery nested in an expression.
void ForEachExprSubquery(Expr* expr,
                         const std::function<void(SelectStmt*)>& fn) {
  if (expr == nullptr) return;
  if (expr->subquery) fn(expr->subquery.get());
  ForEachExprSubquery(expr->left.get(), fn);
  ForEachExprSubquery(expr->right.get(), fn);
  for (auto& arg : expr->args) ForEachExprSubquery(arg.get(), fn);
}

/// Invokes `fn` on every subquery directly nested in a block (FROM-clause
/// derived tables and WHERE/SELECT/GROUP/ORDER expression subqueries).
void ForEachChildBlock(SelectStmt* stmt,
                       const std::function<void(SelectStmt*)>& fn) {
  for (auto& ref : stmt->from) {
    if (ref.subquery) fn(ref.subquery.get());
  }
  ForEachExprSubquery(stmt->where.get(), fn);
  for (auto& item : stmt->items) ForEachExprSubquery(item.expr.get(), fn);
  for (auto& g : stmt->group_by) ForEachExprSubquery(g.get(), fn);
  ForEachExprSubquery(stmt->having.get(), fn);
  for (auto& o : stmt->order_by) ForEachExprSubquery(o.expr.get(), fn);
}

class ResolverImpl {
 public:
  explicit ResolverImpl(const Catalog& catalog) : catalog_(catalog) {}

  Result<ResolvedQuery> Run(const SelectStmt& stmt) {
    ResolvedQuery out;
    out.stmt = CloneSelectStmt(stmt);
    RCC_RETURN_NOT_OK(ExpandViews(out.stmt.get(), 0));
    RCC_RETURN_NOT_OK(ResolveBlock(out.stmt.get()));
    out.operands = std::move(operands_);
    out.raw_constraint = std::move(raw_);
    out.used_default_constraint = out.raw_constraint.empty();
    out.constraint = NormalizeConstraint(
        out.raw_constraint, static_cast<uint32_t>(out.operands.size()));
    return out;
  }

 private:
  /// Replaces FROM references to logical views with their (parsed) bodies,
  /// recursively. The inner currency clauses of the view body stay attached
  /// and are merged during constraint extraction, exactly the paper's
  /// "recursively expands all references to views" step.
  Status ExpandViews(SelectStmt* stmt, int depth) {
    if (depth > kMaxViewDepth) {
      return Status::InvalidArgument("view expansion too deep (cycle?)");
    }
    for (auto& ref : stmt->from) {
      if (ref.is_subquery()) continue;
      const std::string* view_sql = catalog_.FindLogicalView(ref.table);
      if (view_sql == nullptr) continue;
      RCC_ASSIGN_OR_RETURN(auto body, ParseSelect(*view_sql));
      ref.subquery = std::move(body);
      ref.table.clear();  // now a derived table under the original alias
    }
    Status st = Status::OK();
    ForEachChildBlock(stmt, [&](SelectStmt* child) {
      if (st.ok()) {
        Status s = ExpandViews(child, depth + 1);
        if (!s.ok()) st = s;
      }
    });
    return st;
  }

  /// Resolves one block: assigns operand ids to its base tables, recurses
  /// into nested blocks with this block on the scope stack, then extracts
  /// this block's currency clause.
  Status ResolveBlock(SelectStmt* stmt) {
    // Duplicate-alias check within the block.
    for (size_t i = 0; i < stmt->from.size(); ++i) {
      for (size_t j = i + 1; j < stmt->from.size(); ++j) {
        if (EqualsIgnoreCase(stmt->from[i].alias, stmt->from[j].alias)) {
          return Status::InvalidArgument("duplicate table alias '" +
                                         stmt->from[i].alias + "'");
        }
      }
    }
    for (auto& ref : stmt->from) {
      if (ref.is_subquery()) continue;
      const TableDef* def = catalog_.FindTable(ref.table);
      if (def == nullptr) {
        return Status::NotFound("table or view '" + ref.table +
                                "' not found");
      }
      ref.resolved_operand = static_cast<uint32_t>(operands_.size());
      ResolvedOperand op;
      op.id = ref.resolved_operand;
      op.alias = ref.alias;
      op.table = def;
      operands_.push_back(std::move(op));
    }

    scope_stack_.push_back(stmt);
    QualifyBareColumns(stmt);
    Status st = Status::OK();
    ForEachChildBlock(stmt, [&](SelectStmt* child) {
      if (st.ok()) {
        Status s = ResolveBlock(child);
        if (!s.ok()) st = s;
      }
    });
    if (st.ok()) st = ExtractCurrency(stmt);
    scope_stack_.pop_back();
    return st;
  }

  /// Rewrites unqualified column references of this block to qualified ones
  /// when the column belongs to exactly one table in scope (innermost scope
  /// first). Ambiguous or unknown names stay bare and surface at run time.
  void QualifyBareColumns(SelectStmt* stmt) {
    std::function<void(Expr*)> walk = [&](Expr* e) {
      if (e == nullptr) return;
      if (e->kind == ExprKind::kColumnRef && e->table.empty()) {
        for (auto it = scope_stack_.rbegin(); it != scope_stack_.rend();
             ++it) {
          const TableRef* owner = nullptr;
          int matches = 0;
          for (const TableRef& ref : (*it)->from) {
            if (ref.is_subquery()) continue;  // derived columns stay bare
            const TableDef* def = catalog_.FindTable(ref.table);
            if (def != nullptr && def->schema.FindColumn(e->column)) {
              owner = &ref;
              ++matches;
            }
          }
          if (matches == 1) {
            e->table = owner->alias;
            return;
          }
          if (matches > 1) return;  // ambiguous: leave bare
        }
        return;
      }
      walk(e->left.get());
      walk(e->right.get());
      for (auto& a : e->args) walk(a.get());
      // Nested subqueries are qualified by their own block's pass.
    };
    walk(stmt->where.get());
    for (auto& item : stmt->items) walk(item.expr.get());
    for (auto& g : stmt->group_by) walk(g.get());
    walk(stmt->having.get());
    for (auto& o : stmt->order_by) walk(o.expr.get());
  }

  /// Resolves the block's currency clause against the scope stack. A target
  /// alias may name a table of this block or of any enclosing block
  /// (paper §2.1: "the new clause can reference tables defined in the
  /// current or in outer SFW blocks").
  Status ExtractCurrency(SelectStmt* stmt) {
    for (const CurrencySpec& spec : stmt->currency) {
      CcTuple tuple;
      tuple.bound_ms = spec.bound_ms;
      tuple.by_columns = spec.by_columns;
      for (const std::string& target : spec.targets) {
        const TableRef* ref = LookupAlias(target);
        if (ref == nullptr) {
          return Status::InvalidArgument(
              "currency clause references unknown table '" + target + "'");
        }
        for (InputOperandId op : ResolvedQuery::OperandsOf(*ref)) {
          tuple.operands.insert(op);
        }
      }
      raw_.tuples.push_back(std::move(tuple));
    }
    return Status::OK();
  }

  const TableRef* LookupAlias(const std::string& alias) const {
    for (auto it = scope_stack_.rbegin(); it != scope_stack_.rend(); ++it) {
      for (const TableRef& ref : (*it)->from) {
        if (EqualsIgnoreCase(ref.alias, alias)) return &ref;
      }
    }
    return nullptr;
  }

  const Catalog& catalog_;
  std::vector<ResolvedOperand> operands_;
  CcConstraint raw_;
  std::vector<SelectStmt*> scope_stack_;
};

void CollectOperands(const SelectStmt& stmt, std::vector<InputOperandId>* out);

void CollectFromRef(const TableRef& ref, std::vector<InputOperandId>* out) {
  if (ref.is_subquery()) {
    CollectOperands(*ref.subquery, out);
  } else if (ref.resolved_operand != kInvalidOperand) {
    out->push_back(ref.resolved_operand);
  }
}

void CollectExprOperands(const Expr* e, std::vector<InputOperandId>* out) {
  if (e == nullptr) return;
  if (e->subquery) CollectOperands(*e->subquery, out);
  CollectExprOperands(e->left.get(), out);
  CollectExprOperands(e->right.get(), out);
  for (const auto& arg : e->args) CollectExprOperands(arg.get(), out);
}

void CollectOperands(const SelectStmt& stmt,
                     std::vector<InputOperandId>* out) {
  for (const TableRef& ref : stmt.from) CollectFromRef(ref, out);
  CollectExprOperands(stmt.where.get(), out);
  for (const auto& item : stmt.items) CollectExprOperands(item.expr.get(), out);
}

}  // namespace

std::vector<InputOperandId> ResolvedQuery::OperandsOf(const TableRef& ref) {
  std::vector<InputOperandId> out;
  CollectFromRef(ref, &out);
  return out;
}

Result<ResolvedQuery> ResolveQuery(const SelectStmt& stmt,
                                   const Catalog& catalog) {
  ResolverImpl impl(catalog);
  return impl.Run(stmt);
}

}  // namespace rcc
