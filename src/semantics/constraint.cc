#include "semantics/constraint.h"

#include <algorithm>
#include <cstddef>

#include "common/strings.h"

namespace rcc {

std::string CcTuple::ToString() const {
  std::string out = "<" + std::to_string(bound_ms) + "ms, {";
  bool first = true;
  for (InputOperandId op : operands) {
    if (!first) out += ",";
    out += std::to_string(op);
    first = false;
  }
  out += "}";
  if (!by_columns.empty()) {
    out += ", by(";
    for (size_t i = 0; i < by_columns.size(); ++i) {
      if (i > 0) out += ",";
      out += by_columns[i];
    }
    out += ")";
  }
  out += ">";
  return out;
}

void CcConstraint::UnionWith(const CcConstraint& other) {
  tuples.insert(tuples.end(), other.tuples.begin(), other.tuples.end());
}

std::string CcConstraint::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuples[i].ToString();
  }
  out += "}";
  return out;
}

const CcTuple* NormalizedConstraint::TupleFor(InputOperandId op) const {
  for (const CcTuple& t : tuples) {
    if (t.operands.count(op) > 0) return &t;
  }
  return nullptr;
}

SimTimeMs NormalizedConstraint::BoundFor(InputOperandId op) const {
  const CcTuple* t = TupleFor(op);
  return t == nullptr ? 0 : t->bound_ms;
}

bool NormalizedConstraint::RequiresConsistent(InputOperandId a,
                                              InputOperandId b) const {
  const CcTuple* ta = TupleFor(a);
  return ta != nullptr && ta->operands.count(b) > 0;
}

std::string NormalizedConstraint::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuples[i].ToString();
  }
  out += "}";
  return out;
}

NormalizedConstraint NormalizeConstraint(const CcConstraint& raw,
                                         uint32_t num_operands) {
  std::vector<CcTuple> work = raw.tuples;

  // Operands not covered by any tuple form one shared default class with
  // bound 0 (traditional semantics).
  std::set<InputOperandId> covered;
  for (const CcTuple& t : work) {
    covered.insert(t.operands.begin(), t.operands.end());
  }
  CcTuple defaults;
  defaults.bound_ms = 0;
  for (InputOperandId op = 0; op < num_operands; ++op) {
    if (covered.count(op) == 0) defaults.operands.insert(op);
  }
  if (!defaults.operands.empty()) work.push_back(std::move(defaults));

  // Repeatedly merge tuples with overlapping operand sets. Operands from a
  // shared snapshot are equally stale, so the merged bound is the minimum.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < work.size() && !changed; ++i) {
      for (size_t j = i + 1; j < work.size() && !changed; ++j) {
        bool overlap = std::any_of(
            work[i].operands.begin(), work[i].operands.end(),
            [&](InputOperandId op) { return work[j].operands.count(op) > 0; });
        if (!overlap) continue;
        CcTuple merged;
        merged.bound_ms = std::min(work[i].bound_ms, work[j].bound_ms);
        merged.operands = work[i].operands;
        merged.operands.insert(work[j].operands.begin(),
                               work[j].operands.end());
        // Grouping columns survive only when identical; dropping them is
        // strictly tighter, hence safe.
        if (work[i].by_columns == work[j].by_columns) {
          merged.by_columns = work[i].by_columns;
        }
        work[j] = std::move(merged);
        work.erase(work.begin() + static_cast<ptrdiff_t>(i));
        changed = true;
      }
    }
  }

  // Canonical order (by smallest operand) for deterministic output.
  std::sort(work.begin(), work.end(), [](const CcTuple& a, const CcTuple& b) {
    if (a.operands.empty() || b.operands.empty()) {
      return a.operands.size() < b.operands.size();
    }
    return *a.operands.begin() < *b.operands.begin();
  });

  NormalizedConstraint out;
  out.tuples = std::move(work);
  return out;
}

}  // namespace rcc
