#ifndef RCC_SEMANTICS_MODEL_H_
#define RCC_SEMANTICS_MODEL_H_

#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "txn/update_log.h"

namespace rcc {

/// Executable form of the paper's appendix semantics (§8). These functions
/// interpret the back-end update log as the history Hn and compute the
/// formal notions — xtime, stale point, currency, snapshot consistency and
/// Δ-consistency — against which the engine's behaviour is validated in
/// tests and (optionally) at runtime.
namespace semantics {

/// A replica of one table reflecting back-end snapshot `as_of`
/// (= the id of the last transaction applied).
struct CopyState {
  std::string table;
  TxnTimestamp as_of = kInitialTimestamp;
};

/// xtime(O, Hn): commit time of the latest transaction at or before `as_of`
/// that modified `table`; 0 when the table is untouched in that prefix.
SimTimeMs XTime(const UpdateLog& log, std::string_view table,
                TxnTimestamp as_of);

/// The stale point of a copy of `table` synced at snapshot `as_of`: commit
/// virtual time of the first later transaction modifying the table, or
/// nullopt when the copy is still identical to the master.
std::optional<SimTimeMs> StalePoint(const UpdateLog& log,
                                    std::string_view table,
                                    TxnTimestamp as_of);

/// currency(C, now): how long the copy has been stale at virtual time `now`
/// (0 when not stale) — the appendix's xtime(Tn) − stale(C, Hn) measured on
/// the virtual clock.
SimTimeMs CurrencyOf(const UpdateLog& log, std::string_view table,
                     TxnTimestamp as_of, SimTimeMs now);

/// True when the copies can all be attributed to one database snapshot: for
/// every pair, no transaction in (min(as_of), max(as_of)] touched the table
/// of the older copy. (Copies in one currency region trivially qualify:
/// equal as_of.)
bool MutuallyConsistent(const UpdateLog& log,
                        const std::vector<CopyState>& copies);

/// Δ-consistency distance between two copies (appendix §8.5): with
/// xtime(A) <= xtime(B) = Tm, distance(A,B) = currency(A, Hm). Returns 0 for
/// mutually consistent copies.
SimTimeMs Distance(const UpdateLog& log, const CopyState& a,
                   const CopyState& b);

/// Maximum pairwise distance over a set: the set is Δ-consistent with this
/// bound (appendix: "we extend the notion of Δ-consistency for a set K").
SimTimeMs GroupDistance(const UpdateLog& log,
                        const std::vector<CopyState>& copies);

}  // namespace semantics
}  // namespace rcc

#endif  // RCC_SEMANTICS_MODEL_H_
