#ifndef RCC_CORE_RCC_H_
#define RCC_CORE_RCC_H_

/// Umbrella header for the RCC library: everything a downstream application
/// needs to stand up a back-end + MTCache pair, define currency regions and
/// materialized views, and run SQL with currency-and-consistency clauses.

#include "core/query_result.h"   // IWYU pragma: export
#include "core/session.h"        // IWYU pragma: export
#include "core/system.h"         // IWYU pragma: export
#include "semantics/model.h"     // IWYU pragma: export
#include "sql/parser.h"          // IWYU pragma: export

#endif  // RCC_CORE_RCC_H_
