#ifndef RCC_CORE_STATEMENT_ROUTER_H_
#define RCC_CORE_STATEMENT_ROUTER_H_

#include <cstdint>

#include "cache/cache_dbms.h"

namespace rcc {

/// Session-level options a routed statement carries: the same knobs
/// Session::ExecuteSelectSql would hand to the local CacheDbms, minus the
/// plan-cache machinery (plans are per-node, so the router's nodes cache
/// independently).
struct RoutedStatementOptions {
  SimTimeMs timeline_floor = -1;
  DegradeMode degrade = DegradeMode::kNone;
  uint64_t session_tag = 0;
  Deadline deadline;
  bool shed_hint = false;
};

/// Dispatches a parsed SELECT to whichever execution target can satisfy its
/// C&C constraint — the seam between Session (which owns SQL surface and
/// session state) and the fleet layer (which owns topology). A Session with
/// no router executes against the system's single cache exactly as before;
/// a Session handed a router forwards every plain SELECT and keeps
/// EXPLAIN/DML/session statements local. Implementations must be
/// thread-safe: the network front end funnels statements from pool threads.
class StatementRouter {
 public:
  virtual ~StatementRouter() = default;

  virtual Result<CacheQueryOutcome> RouteSelect(
      const SelectStmt& stmt, const RoutedStatementOptions& opts) = 0;
};

}  // namespace rcc

#endif  // RCC_CORE_STATEMENT_ROUTER_H_
