#include "core/query_result.h"

#include <algorithm>

namespace rcc {

QueryResult MakeQueryResult(CacheQueryOutcome outcome) {
  QueryResult out;
  out.layout = std::move(outcome.result.layout);
  out.rows = std::move(outcome.result.rows);
  out.shape = outcome.shape;
  out.plan_text = std::move(outcome.plan_text);
  out.stats = outcome.stats;
  out.constraint = std::move(outcome.constraint);
  out.executed_at = outcome.executed_at;
  if (out.stats.degraded_serves > 0) {
    out.degraded = true;
    out.staleness_ms = out.stats.degraded_staleness_ms;
    out.advisory = Status::StaleOk(
        "served from local view(s) " + std::to_string(out.staleness_ms) +
        "ms stale after remote failure");
  }
  return out;
}

std::string QueryResult::ToTable(size_t max_rows) const {
  // Column widths.
  size_t n = layout.num_slots();
  std::vector<size_t> widths(n);
  std::vector<std::string> headers(n);
  for (size_t c = 0; c < n; ++c) {
    headers[c] = layout.schema().column(c).name;
    widths[c] = headers[c].size();
  }
  size_t shown = std::min(rows.size(), max_rows);
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(n);
    for (size_t c = 0; c < n; ++c) {
      cells[r][c] = rows[r][c].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& vals) {
    std::string out = "|";
    for (size_t c = 0; c < n; ++c) {
      out += " " + vals[c] + std::string(widths[c] - vals[c].size(), ' ') +
             " |";
    }
    out += "\n";
    return out;
  };
  std::string sep = "+";
  for (size_t c = 0; c < n; ++c) {
    sep += std::string(widths[c] + 2, '-') + "+";
  }
  sep += "\n";
  std::string out = sep + line(headers) + sep;
  for (size_t r = 0; r < shown; ++r) out += line(cells[r]);
  out += sep;
  if (rows.size() > shown) {
    out += "(" + std::to_string(rows.size() - shown) + " more rows)\n";
  }
  out += "(" + std::to_string(rows.size()) + " rows)\n";
  return out;
}

}  // namespace rcc
