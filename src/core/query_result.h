#ifndef RCC_CORE_QUERY_RESULT_H_
#define RCC_CORE_QUERY_RESULT_H_

#include <memory>
#include <string>
#include <vector>

#include "cache/cache_dbms.h"
#include "obs/trace.h"

namespace rcc {

/// What a session returns for one statement. For BEGIN/END TIMEORDERED the
/// row set is empty and `message` describes the mode change.
struct QueryResult {
  RowLayout layout;
  std::vector<Row> rows;
  /// Coarse plan shape (paper Fig. 4.1 classes).
  PlanShape shape = PlanShape::kRemoteOnly;
  /// Full plan rendering.
  std::string plan_text;
  ExecStats stats;
  /// The normalized C&C constraint the plan was required to satisfy.
  NormalizedConstraint constraint;
  SimTimeMs executed_at = 0;
  std::string message;
  /// Rows touched by a DML statement (INSERT/UPDATE/DELETE).
  int64_t rows_affected = 0;
  /// True when some branch was answered from a local view after its remote
  /// branch failed (see DegradeMode). The rows are correct data, just
  /// possibly staler than the query's bound.
  bool degraded = false;
  /// Staleness (virtual ms) of the most stale degraded serve; 0 when not
  /// degraded.
  SimTimeMs staleness_ms = 0;
  /// StaleOk advisory describing the degradation, Status::OK() otherwise —
  /// the paper §1 "return the data but with an error code" behaviour.
  Status advisory = Status::OK();
  /// The query's structured event trace; null unless the session had
  /// SET TRACE ON (or the statement was EXPLAIN ANALYZE). Shared so results
  /// stay cheaply copyable.
  std::shared_ptr<const obs::QueryTrace> trace;

  /// Pretty ASCII table of the result rows (used by the examples).
  std::string ToTable(size_t max_rows = 20) const;
};

/// Converts a cache execution outcome into the session-level result shape,
/// including the degraded-serve advisory. Shared by the serial session path
/// and the concurrent batch executor so both report identically.
QueryResult MakeQueryResult(CacheQueryOutcome outcome);

}  // namespace rcc

#endif  // RCC_CORE_QUERY_RESULT_H_
