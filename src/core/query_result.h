#ifndef RCC_CORE_QUERY_RESULT_H_
#define RCC_CORE_QUERY_RESULT_H_

#include <string>
#include <vector>

#include "cache/cache_dbms.h"

namespace rcc {

/// What a session returns for one statement. For BEGIN/END TIMEORDERED the
/// row set is empty and `message` describes the mode change.
struct QueryResult {
  RowLayout layout;
  std::vector<Row> rows;
  /// Coarse plan shape (paper Fig. 4.1 classes).
  PlanShape shape = PlanShape::kRemoteOnly;
  /// Full plan rendering.
  std::string plan_text;
  ExecStats stats;
  /// The normalized C&C constraint the plan was required to satisfy.
  NormalizedConstraint constraint;
  SimTimeMs executed_at = 0;
  std::string message;
  /// Rows touched by a DML statement (INSERT/UPDATE/DELETE).
  int64_t rows_affected = 0;

  /// Pretty ASCII table of the result rows (used by the examples).
  std::string ToTable(size_t max_rows = 20) const;
};

}  // namespace rcc

#endif  // RCC_CORE_QUERY_RESULT_H_
