#ifndef RCC_CORE_SESSION_H_
#define RCC_CORE_SESSION_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/query_result.h"
#include "core/system.h"
#include "semantics/model.h"

namespace rcc {

class StatementRouter;

/// An application session against the cache DBMS. Parses statements,
/// runs the C&C-aware pipeline, and implements timeline consistency
/// (paper §2.3): inside BEGIN TIMEORDERED ... END TIMEORDERED, a query never
/// reads data older than what the session has already seen — currency guards
/// are additionally floored at the session's high-water snapshot time.
class Session {
 public:
  explicit Session(RccSystem* system)
      : system_(system), id_(system->NextSessionId()) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Per-statement execution options the admission layer (network server)
  /// hands down with each request. The deadline base is the request's
  /// *enqueue* time, so time spent waiting in the admission queue counts
  /// against the statement's budget.
  struct StatementOptions {
    /// When the request entered the system (admission-queue enqueue for
    /// served statements; defaults to "now" for in-process callers).
    std::chrono::steady_clock::time_point enqueued_at =
        std::chrono::steady_clock::now();
    /// Per-request deadline override (wire field); 0 = not set. Highest
    /// precedence.
    int64_t deadline_ms = 0;
    /// Caller-level default (ServerOptions::default_deadline_ms); 0 = none.
    /// Lowest precedence — `SET DEADLINE <ms>` sits between the two.
    int64_t default_deadline_ms = 0;
    /// Overload-pressure hint: prefer the permitted degraded-local branch
    /// over a remote round-trip (C&C-aware shedding).
    bool shed_hint = false;
  };

  /// Executes one SQL statement (SELECT with optional currency clause, or
  /// BEGIN/END TIMEORDERED).
  Result<QueryResult> Execute(const std::string& sql) {
    return Execute(sql, StatementOptions{});
  }
  Result<QueryResult> Execute(const std::string& sql,
                              const StatementOptions& opts);

  /// Executes a pre-parsed statement.
  Result<QueryResult> ExecuteStatement(const Statement& stmt) {
    return ExecuteStatement(stmt, StatementOptions{});
  }
  Result<QueryResult> ExecuteStatement(const Statement& stmt,
                                       const StatementOptions& opts);

  /// Executes a batch of SELECT statements concurrently on the system's
  /// worker pool (RccSystem::ExecuteConcurrent), applying this session's
  /// degrade mode and — in time-ordered mode — sharing its timeline floor:
  /// every query starts at the current floor and the floor ends at the
  /// maximum snapshot time any query of the batch observed, exactly as if
  /// the batch had run serially in some order. `workers` as in
  /// ConcurrentBatchOptions.
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<std::string>& sqls, int workers = 0);

  /// Optimizes without executing: the entry point of the plan-choice
  /// experiments.
  Result<QueryPlan> Prepare(const std::string& sql) const;

  /// Independently verifies — against the appendix semantics model
  /// interpreting the back-end update log — that the data sources a plan
  /// would read *right now* satisfy the plan's C&C constraint. Returns OK or
  /// ConstraintViolation with an explanation. Used by tests and available to
  /// applications that want the "detect and report" behaviour from the
  /// paper's introduction.
  Status VerifyConstraint(const QueryPlan& plan) const;

  bool in_timeordered() const {
    return timeordered_.load(std::memory_order_acquire);
  }

  /// Process-unique session id; tags this session's queries and mode
  /// toggles in the audit history.
  uint64_t id() const { return id_; }

  /// Degradation policy for remote-branch failures in this session's
  /// queries. Settable in SQL: SET DEGRADE = NONE | BOUNDED | ALWAYS.
  /// Atomic: a network connection may apply SET DEGRADE on one thread while
  /// queries for the same session are in flight on pool workers; each query
  /// reads the mode exactly once at admission, so it runs entirely under the
  /// old or entirely under the new policy (never a mix).
  DegradeMode degrade_mode() const {
    return degrade_mode_.load(std::memory_order_acquire);
  }
  void set_degrade_mode(DegradeMode mode) {
    degrade_mode_.store(mode, std::memory_order_release);
  }

  /// Per-query structured tracing for this session's serial SELECTs.
  /// Settable in SQL: SET TRACE ON | OFF. When on, each QueryResult carries
  /// its trace. EXPLAIN ANALYZE traces its one statement regardless.
  bool trace_enabled() const {
    return trace_enabled_.load(std::memory_order_acquire);
  }
  void set_trace_enabled(bool on) {
    trace_enabled_.store(on, std::memory_order_release);
  }

  /// Session-level statement deadline in real ms; 0 = none. Settable in SQL:
  /// SET DEADLINE <ms> (0 turns it off). Overridden per request by
  /// StatementOptions::deadline_ms; overrides the caller default.
  int64_t deadline_ms() const {
    return deadline_ms_.load(std::memory_order_acquire);
  }
  void set_deadline_ms(int64_t ms) {
    deadline_ms_.store(ms, std::memory_order_release);
  }

  /// DML: builds the row operations (evaluating predicates against the
  /// master data) and forwards them as one transaction to the back-end —
  /// the cache never applies writes itself (paper §3 item 5).
  Result<QueryResult> ExecuteInsert(const InsertStmt& stmt);
  Result<QueryResult> ExecuteUpdate(const UpdateStmt& stmt);
  Result<QueryResult> ExecuteDelete(const DeleteStmt& stmt);
  /// The session's snapshot high-water mark (virtual time); -1 before any
  /// query ran in time-ordered mode.
  SimTimeMs timeline_floor() const {
    return timeline_floor_.load(std::memory_order_acquire);
  }

  /// Installs a fleet router: every subsequent plain SELECT (not EXPLAIN,
  /// not DML, not session statements) dispatches through it instead of the
  /// system's single cache. Wire-up time only — set before the session
  /// serves traffic, never concurrently with Execute.
  void set_router(StatementRouter* router) { router_ = router; }
  StatementRouter* router() const { return router_; }

 private:
  /// Recognizes "SET DEGRADE [=] <mode>" (handled before SQL parsing).
  static bool ParseSetDegrade(const std::string& sql, DegradeMode* mode);
  /// Recognizes "SET TRACE [=] ON|OFF" (handled before SQL parsing).
  static bool ParseSetTrace(const std::string& sql, bool* on);
  /// Recognizes "SET DEADLINE [=] <ms>" (handled before SQL parsing);
  /// 0 disables the session deadline.
  static bool ParseSetDeadline(const std::string& sql, int64_t* ms);
  /// Resolves the effective deadline for one statement: per-request override
  /// > session SET DEADLINE > caller default, anchored at opts.enqueued_at.
  Deadline ResolveDeadline(const StatementOptions& opts) const;
  /// EXPLAIN [ANALYZE]: renders the plan (and, for ANALYZE, executes the
  /// query and renders its trace and stats) into QueryResult::message.
  Result<QueryResult> ExecuteExplain(const Statement& stmt);
  /// SELECT (or EXPLAIN [ANALYZE] SELECT) text through the system-wide plan
  /// cache: a hit executes the cached plan with bound parameters, skipping
  /// the lex→parse→resolve→optimize front end entirely; a miss builds,
  /// parameterizes and publishes the plan. `body` starts at the SELECT
  /// keyword so parse-time literal offsets line up with the cache key's
  /// parameter slots.
  Result<QueryResult> ExecuteSelectSql(const std::string& body,
                                       bool is_explain, bool is_analyze,
                                       const StatementOptions& opts);
  /// Dispatches one parsed SELECT through the installed router, carrying the
  /// session's floor/degrade/deadline exactly as the local path would, and
  /// raises the timeline floor from the routed outcome.
  Result<QueryResult> ExecuteRouted(const SelectStmt& stmt,
                                    DegradeMode degrade, bool timeordered,
                                    const StatementOptions& opts);

  /// CAS-max: lifts the timeline floor to `seen` unless another query
  /// already published something higher. A plain store would let a slow
  /// query with an older snapshot *regress* the floor behind a faster
  /// concurrent one, breaking the "never read older than already seen"
  /// guarantee of §2.3.
  void RaiseFloor(SimTimeMs seen) {
    SimTimeMs cur = timeline_floor_.load(std::memory_order_relaxed);
    while (seen > cur &&
           !timeline_floor_.compare_exchange_weak(cur, seen,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_relaxed)) {
    }
  }

  RccSystem* system_;
  uint64_t id_;
  // All session modes are atomics: the network front end funnels one
  // connection's control frames and queries through one Session from
  // different pool threads, so SET DEGRADE / SET TRACE / BEGIN TIMEORDERED
  // legitimately race with Execute/ExecuteBatch.
  std::atomic<bool> timeordered_{false};
  std::atomic<bool> trace_enabled_{false};
  /// Atomic because ExecuteBatch workers CAS-max their observed snapshot
  /// times into it concurrently; the serial path uses it like a plain field.
  std::atomic<SimTimeMs> timeline_floor_{-1};
  std::atomic<DegradeMode> degrade_mode_{DegradeMode::kNone};
  /// Session statement deadline (real ms); 0 = none. Atomic for the same
  /// reason as the modes above (SET DEADLINE races with in-flight queries).
  std::atomic<int64_t> deadline_ms_{0};
  /// Fleet dispatch target; nullptr = execute on the system's single cache.
  /// Set once at wire-up (see set_router), so a plain pointer suffices.
  StatementRouter* router_ = nullptr;
};

}  // namespace rcc

#endif  // RCC_CORE_SESSION_H_
