#include "core/session.h"

#include <cctype>
#include <functional>

#include "common/strings.h"
#include "core/statement_router.h"
#include "exec/switch_union.h"
#include "obs/explain.h"
#include "plan/plan_cache.h"
#include "sql/parser.h"

namespace rcc {

namespace {

size_t SkipSpace(const std::string& s, size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

/// Consumes `word` (case-insensitive, whole-word) at *pos after skipping
/// whitespace; advances *pos past it on match.
bool MatchWord(const std::string& s, size_t* pos, const char* word) {
  size_t i = SkipSpace(s, *pos);
  size_t j = 0;
  while (word[j] != '\0') {
    if (i + j >= s.size() || AsciiToLowerChar(s[i + j]) != word[j]) {
      return false;
    }
    ++j;
  }
  if (i + j < s.size()) {
    unsigned char next = static_cast<unsigned char>(s[i + j]);
    if (std::isalnum(next) || next == '_') return false;
  }
  *pos = i + j;
  return true;
}

/// Recognizes SELECT and EXPLAIN [ANALYZE] SELECT statements without
/// parsing. `*body` is set to the offset of the SELECT keyword, so the
/// substring from there is a plain SELECT whose byte offsets match what the
/// plan cache normalizes.
bool SniffSelect(const std::string& sql, size_t* body, bool* is_explain,
                 bool* is_analyze) {
  size_t pos = 0;
  *is_explain = MatchWord(sql, &pos, "explain");
  *is_analyze = *is_explain && MatchWord(sql, &pos, "analyze");
  size_t at = SkipSpace(sql, pos);
  size_t probe = pos;
  if (!MatchWord(sql, &probe, "select")) return false;
  *body = at;
  return true;
}

}  // namespace

bool Session::ParseSetDegrade(const std::string& sql, DegradeMode* mode) {
  // Normalize "=", tabs and the trailing ";" to spaces, then tokenize.
  std::string normalized = sql;
  for (char& c : normalized) {
    if (c == '=' || c == ';' || c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  std::vector<std::string> words;
  for (const std::string& piece : Split(normalized, ' ')) {
    if (!piece.empty()) words.push_back(piece);
  }
  if (words.size() != 3 || !EqualsIgnoreCase(words[0], "SET") ||
      !EqualsIgnoreCase(words[1], "DEGRADE")) {
    return false;
  }
  if (EqualsIgnoreCase(words[2], "NONE")) {
    *mode = DegradeMode::kNone;
  } else if (EqualsIgnoreCase(words[2], "BOUNDED")) {
    *mode = DegradeMode::kBounded;
  } else if (EqualsIgnoreCase(words[2], "ALWAYS")) {
    *mode = DegradeMode::kAlways;
  } else {
    return false;
  }
  return true;
}

bool Session::ParseSetTrace(const std::string& sql, bool* on) {
  std::string normalized = sql;
  for (char& c : normalized) {
    if (c == '=' || c == ';' || c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  std::vector<std::string> words;
  for (const std::string& piece : Split(normalized, ' ')) {
    if (!piece.empty()) words.push_back(piece);
  }
  if (words.size() != 3 || !EqualsIgnoreCase(words[0], "SET") ||
      !EqualsIgnoreCase(words[1], "TRACE")) {
    return false;
  }
  if (EqualsIgnoreCase(words[2], "ON")) {
    *on = true;
  } else if (EqualsIgnoreCase(words[2], "OFF")) {
    *on = false;
  } else {
    return false;
  }
  return true;
}

bool Session::ParseSetDeadline(const std::string& sql, int64_t* ms) {
  std::string normalized = sql;
  for (char& c : normalized) {
    if (c == '=' || c == ';' || c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  std::vector<std::string> words;
  for (const std::string& piece : Split(normalized, ' ')) {
    if (!piece.empty()) words.push_back(piece);
  }
  if (words.size() != 3 || !EqualsIgnoreCase(words[0], "SET") ||
      !EqualsIgnoreCase(words[1], "DEADLINE")) {
    return false;
  }
  // A bare non-negative integer (milliseconds); anything else is not a
  // SET DEADLINE statement and falls through to the SQL parser's error.
  const std::string& value = words[2];
  if (value.empty()) return false;
  int64_t parsed = 0;
  for (char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    parsed = parsed * 10 + (c - '0');
    if (parsed > 86400000) return false;  // cap at 24h: reject overflow/typos
  }
  *ms = parsed;
  return true;
}

Deadline Session::ResolveDeadline(const StatementOptions& opts) const {
  int64_t ms = opts.deadline_ms;
  if (ms <= 0) ms = deadline_ms();
  if (ms <= 0) ms = opts.default_deadline_ms;
  if (ms <= 0) return Deadline::None();
  return Deadline::After(opts.enqueued_at, ms);
}

Result<QueryResult> Session::Execute(const std::string& sql,
                                     const StatementOptions& opts) {
  // Session options are handled before SQL parsing (like BEGIN TIMEORDERED,
  // they configure the session rather than run a query).
  DegradeMode mode;
  if (ParseSetDegrade(sql, &mode)) {
    set_degrade_mode(mode);
    QueryResult out;
    out.message =
        std::string("degrade mode ") + std::string(DegradeModeName(mode));
    out.executed_at = system_->Now();
    return out;
  }
  bool trace_on;
  if (ParseSetTrace(sql, &trace_on)) {
    set_trace_enabled(trace_on);
    QueryResult out;
    out.message = trace_on ? "trace ON" : "trace OFF";
    out.executed_at = system_->Now();
    return out;
  }
  int64_t deadline_ms_value = 0;
  if (ParseSetDeadline(sql, &deadline_ms_value)) {
    set_deadline_ms(deadline_ms_value);
    QueryResult out;
    out.message = deadline_ms_value > 0
                      ? "deadline " + std::to_string(deadline_ms_value) + "ms"
                      : "deadline OFF";
    out.executed_at = system_->Now();
    return out;
  }
  // SELECT (and EXPLAIN [ANALYZE] SELECT) text goes through the plan cache;
  // everything else takes the full parse.
  bool is_explain = false;
  bool is_analyze = false;
  size_t body_pos = 0;
  if (SniffSelect(sql, &body_pos, &is_explain, &is_analyze)) {
    return ExecuteSelectSql(sql.substr(body_pos), is_explain, is_analyze,
                            opts);
  }
  RCC_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return ExecuteStatement(stmt, opts);
}

Result<QueryResult> Session::ExecuteSelectSql(const std::string& body,
                                              bool is_explain, bool is_analyze,
                                              const StatementOptions& opts) {
  // Read the session modes exactly once: a concurrent SET DEGRADE / BEGIN
  // TIMEORDERED takes effect at the next query's admission, never mid-query
  // (the cache lookup, audit mode and floor handling below must agree).
  const DegradeMode session_degrade = degrade_mode();
  const bool session_timeordered = in_timeordered();
  // Fleet routing: plain SELECTs dispatch through the router, which prepares
  // on the chosen node (per-node plan caches — the anchor's cache key would
  // be wrong for a peer's view set). EXPLAIN stays local: it describes the
  // anchor's plan, not a dispatch decision.
  if (router_ != nullptr && !is_explain) {
    RCC_ASSIGN_OR_RETURN(auto select, ParseSelect(body));
    return ExecuteRouted(*select, session_degrade, session_timeordered, opts);
  }
  CacheDbms* cache = system_->cache();
  PlanCache& plan_cache = cache->plan_cache();
  PlanCache::LookupResult looked =
      plan_cache.Lookup(body, session_degrade, session_timeordered);
  std::shared_ptr<const PlanCacheEntry> entry;
  std::vector<Value> params;
  bool cached = false;
  if (looked.hit.has_value()) {
    entry = looked.hit->entry;
    params = std::move(looked.hit->params);
    cached = true;
  } else {
    ParseOptions popts;
    popts.record_literal_offsets = true;
    RCC_ASSIGN_OR_RETURN(auto select, ParseSelect(body, popts));
    RCC_ASSIGN_OR_RETURN(QueryPlan plan, cache->Prepare(*select));
    auto owned = std::make_shared<QueryPlan>(std::move(plan));
    auto fresh = std::make_shared<PlanCacheEntry>();
    if (looked.norm.ok) {
      ParameterizeOutcome po =
          ParameterizePlan(owned.get(), looked.norm.slots, cache->catalog());
      fresh->parameterized = po.parameterized;
      for (const ParamSlot& slot : looked.norm.slots) {
        fresh->creation_values.push_back(slot.value);
      }
    }
    fresh->plan = owned;
    fresh->created_degrade = session_degrade;
    fresh->created_timeordered = session_timeordered;
    entry = fresh;
    params = fresh->creation_values;
    plan_cache.Insert(looked.norm, body, session_degrade, session_timeordered,
                      std::move(fresh), looked.version_at_lookup);
  }
  const QueryPlan& plan = *entry->plan;
  if (is_explain && !is_analyze) {
    QueryResult out;
    out.shape = plan.Shape();
    out.plan_text = plan.DescribeTree();
    out.constraint = plan.resolved.constraint;
    out.message = obs::RenderExplain(plan, cached);
    out.executed_at = system_->Now();
    return out;
  }
  SimTimeMs floor = session_timeordered ? timeline_floor() : -1;
  std::shared_ptr<obs::QueryTrace> trace;
  if (trace_enabled() || is_analyze) {
    trace = std::make_shared<obs::QueryTrace>();
  }
  CacheDbms::PreparedExecOptions eo;
  eo.timeline_floor = floor;
  // The query *behaves* under the mode the plan was created for and is
  // *audited* under the session's current mode. On every legitimate hit the
  // two agree — the cache key separates degrade modes — so the split is
  // invisible; under the RCC_PLANCACHE_MUTATE build (key drops the mode)
  // they diverge and the conformance oracle sees a degraded serve recorded
  // under a mode that never authorized one.
  eo.degrade = entry->created_degrade;
  eo.audit_degrade = session_degrade;
  eo.trace = trace.get();
  eo.session_tag = id_;
  eo.params = &params;
  eo.deadline = ResolveDeadline(opts);
  eo.shed_hint = opts.shed_hint;
  RCC_ASSIGN_OR_RETURN(CacheQueryOutcome outcome,
                       cache->ExecutePrepared(plan, eo));
  if (session_timeordered) RaiseFloor(outcome.max_seen_heartbeat);
  QueryResult result = MakeQueryResult(std::move(outcome));
  if (is_analyze) {
    result.message =
        obs::RenderExplainAnalyze(plan, result.stats, *trace, cached);
  }
  result.trace = std::move(trace);
  return result;
}

Result<QueryResult> Session::ExecuteRouted(const SelectStmt& stmt,
                                           DegradeMode degrade,
                                           bool timeordered,
                                           const StatementOptions& opts) {
  RoutedStatementOptions ro;
  ro.timeline_floor = timeordered ? timeline_floor() : -1;
  ro.degrade = degrade;
  ro.session_tag = id_;
  ro.deadline = ResolveDeadline(opts);
  ro.shed_hint = opts.shed_hint;
  RCC_ASSIGN_OR_RETURN(CacheQueryOutcome outcome,
                       router_->RouteSelect(stmt, ro));
  if (timeordered) RaiseFloor(outcome.max_seen_heartbeat);
  return MakeQueryResult(std::move(outcome));
}

Result<QueryResult> Session::ExecuteStatement(const Statement& stmt,
                                              const StatementOptions& opts) {
  QueryResult out;
  switch (stmt.kind) {
    case StatementKind::kInsert:
      return ExecuteInsert(*stmt.insert);
    case StatementKind::kUpdate:
      return ExecuteUpdate(*stmt.update);
    case StatementKind::kDelete:
      return ExecuteDelete(*stmt.del);
    case StatementKind::kBeginTimeOrdered:
      timeordered_.store(true, std::memory_order_release);
      timeline_floor_.store(-1, std::memory_order_release);
      if (system_->history_sink() != nullptr) {
        system_->history_sink()->OnSessionMode(id_, true, system_->Now());
      }
      out.message = "timeline consistency ON";
      return out;
    case StatementKind::kEndTimeOrdered:
      timeordered_.store(false, std::memory_order_release);
      timeline_floor_.store(-1, std::memory_order_release);
      if (system_->history_sink() != nullptr) {
        system_->history_sink()->OnSessionMode(id_, false, system_->Now());
      }
      out.message = "timeline consistency OFF";
      return out;
    case StatementKind::kExplain:
      return ExecuteExplain(stmt);
    case StatementKind::kSelect:
      break;
  }

  const bool session_timeordered = in_timeordered();
  if (router_ != nullptr) {
    return ExecuteRouted(*stmt.select, degrade_mode(), session_timeordered,
                         opts);
  }
  CacheDbms* cache = system_->cache();
  RCC_ASSIGN_OR_RETURN(QueryPlan plan, cache->Prepare(*stmt.select));
  std::shared_ptr<obs::QueryTrace> trace;
  if (trace_enabled()) trace = std::make_shared<obs::QueryTrace>();
  CacheDbms::PreparedExecOptions eo;
  eo.timeline_floor = session_timeordered ? timeline_floor() : -1;
  eo.degrade = degrade_mode();
  eo.trace = trace.get();
  eo.session_tag = id_;
  eo.deadline = ResolveDeadline(opts);
  eo.shed_hint = opts.shed_hint;
  RCC_ASSIGN_OR_RETURN(CacheQueryOutcome outcome,
                       cache->ExecutePrepared(plan, eo));
  if (session_timeordered) RaiseFloor(outcome.max_seen_heartbeat);
  QueryResult result = MakeQueryResult(std::move(outcome));
  result.trace = std::move(trace);
  return result;
}

Result<QueryResult> Session::ExecuteExplain(const Statement& stmt) {
  CacheDbms* cache = system_->cache();
  RCC_ASSIGN_OR_RETURN(QueryPlan plan, cache->Prepare(*stmt.select));
  if (!stmt.explain_analyze) {
    QueryResult out;
    out.shape = plan.Shape();
    out.plan_text = plan.DescribeTree();
    out.constraint = plan.resolved.constraint;
    out.message = obs::RenderExplain(plan);
    out.executed_at = system_->Now();
    return out;
  }
  // ANALYZE: execute for real (timeline floor advances exactly as a plain
  // SELECT would), with a statement-scoped trace regardless of SET TRACE.
  const bool session_timeordered = in_timeordered();
  SimTimeMs floor = session_timeordered ? timeline_floor() : -1;
  auto trace = std::make_shared<obs::QueryTrace>();
  RCC_ASSIGN_OR_RETURN(
      CacheQueryOutcome outcome,
      cache->ExecutePrepared(plan, floor, degrade_mode(), trace.get(), id_));
  if (session_timeordered) RaiseFloor(outcome.max_seen_heartbeat);
  QueryResult result = MakeQueryResult(std::move(outcome));
  result.message = obs::RenderExplainAnalyze(plan, result.stats, *trace);
  result.trace = std::move(trace);
  return result;
}

std::vector<Result<QueryResult>> Session::ExecuteBatch(
    const std::vector<std::string>& sqls, int workers) {
  ConcurrentBatchOptions opts;
  opts.workers = workers;
  opts.degrade = degrade_mode();
  opts.session_tag = id_;
  if (in_timeordered()) {
    opts.timeline_floor = timeline_floor();
    opts.floor_cell = &timeline_floor_;
  }
  return system_->ExecuteConcurrent(sqls, opts);
}

namespace {

/// Scope over one master-table row for evaluating DML predicates and
/// assignment expressions. The table is addressable by its own name.
struct TableRowScope {
  explicit TableRowScope(const TableDef& def) {
    for (const Column& c : def.schema.columns()) {
      layout.Add(0, c.name, c.type);
    }
    aliases[ToLower(def.name)] = 0;
  }
  EvalScope For(const Row& row) {
    EvalScope s;
    s.layout = &layout;
    s.row = &row;
    s.aliases = &aliases;
    return s;
  }
  RowLayout layout;
  AliasMap aliases;
};

Result<QueryResult> ForwardTransaction(RccSystem* system,
                                       std::vector<RowOp> ops,
                                       const char* verb) {
  int64_t affected = static_cast<int64_t>(ops.size());
  RCC_ASSIGN_OR_RETURN(TxnTimestamp ts,
                       system->backend()->ExecuteTransaction(std::move(ops)));
  QueryResult out;
  out.rows_affected = affected;
  out.executed_at = system->Now();
  out.message = std::string(verb) + " " + std::to_string(affected) +
                " row(s), committed as txn " + std::to_string(ts) +
                " at the back-end";
  return out;
}

}  // namespace

Result<QueryResult> Session::ExecuteInsert(const InsertStmt& stmt) {
  const TableDef* def = system_->backend()->catalog().FindTable(stmt.table);
  if (def == nullptr) {
    return Status::NotFound("table " + stmt.table + " not found");
  }
  // Map listed columns (or the full schema) to positions.
  std::vector<size_t> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < def->schema.num_columns(); ++i) {
      positions.push_back(i);
    }
  } else {
    for (const std::string& c : stmt.columns) {
      auto idx = def->schema.FindColumn(c);
      if (!idx) {
        return Status::NotFound("column " + c + " not in " + stmt.table);
      }
      positions.push_back(*idx);
    }
  }
  std::vector<RowOp> ops;
  EvalScope empty;
  for (const auto& exprs : stmt.rows) {
    if (exprs.size() != positions.size()) {
      return Status::InvalidArgument("VALUES arity mismatch");
    }
    Row row(def->schema.num_columns(), Value::Null());
    for (size_t i = 0; i < exprs.size(); ++i) {
      RCC_ASSIGN_OR_RETURN(Value v, EvalExpr(*exprs[i], empty, nullptr));
      row[positions[i]] = std::move(v);
    }
    RowOp op;
    op.kind = RowOp::Kind::kInsert;
    op.table = def->name;
    op.row = std::move(row);
    ops.push_back(std::move(op));
  }
  return ForwardTransaction(system_, std::move(ops), "inserted");
}

Result<QueryResult> Session::ExecuteUpdate(const UpdateStmt& stmt) {
  const TableDef* def = system_->backend()->catalog().FindTable(stmt.table);
  if (def == nullptr) {
    return Status::NotFound("table " + stmt.table + " not found");
  }
  const Table* master = system_->backend()->table(stmt.table);
  std::vector<size_t> positions;
  for (const auto& [col, expr] : stmt.assignments) {
    auto idx = def->schema.FindColumn(col);
    if (!idx) return Status::NotFound("column " + col + " not in " + stmt.table);
    positions.push_back(*idx);
  }
  TableRowScope scope(*def);
  std::vector<RowOp> ops;
  Status failure = Status::OK();
  master->Scan([&](const Row& row) {
    EvalScope s = scope.For(row);
    if (stmt.where != nullptr) {
      auto match = EvalPredicate(*stmt.where, s, nullptr);
      if (!match.ok()) {
        failure = match.status();
        return false;
      }
      if (!*match) return true;
    }
    Row updated = row;
    for (size_t i = 0; i < positions.size(); ++i) {
      auto v = EvalExpr(*stmt.assignments[i].second, s, nullptr);
      if (!v.ok()) {
        failure = v.status();
        return false;
      }
      updated[positions[i]] = std::move(*v);
    }
    RowOp op;
    op.kind = RowOp::Kind::kUpdate;
    op.table = def->name;
    // Log the pre-image key: if an assignment touched a clustered-key
    // column, replicas must delete the old row image, not upsert blindly.
    op.key = master->KeyOf(row);
    op.row = std::move(updated);
    ops.push_back(std::move(op));
    return true;
  });
  RCC_RETURN_NOT_OK(failure);
  if (ops.empty()) {
    QueryResult out;
    out.message = "updated 0 row(s)";
    out.executed_at = system_->Now();
    return out;
  }
  return ForwardTransaction(system_, std::move(ops), "updated");
}

Result<QueryResult> Session::ExecuteDelete(const DeleteStmt& stmt) {
  const TableDef* def = system_->backend()->catalog().FindTable(stmt.table);
  if (def == nullptr) {
    return Status::NotFound("table " + stmt.table + " not found");
  }
  const Table* master = system_->backend()->table(stmt.table);
  TableRowScope scope(*def);
  std::vector<RowOp> ops;
  Status failure = Status::OK();
  master->Scan([&](const Row& row) {
    if (stmt.where != nullptr) {
      EvalScope s = scope.For(row);
      auto match = EvalPredicate(*stmt.where, s, nullptr);
      if (!match.ok()) {
        failure = match.status();
        return false;
      }
      if (!*match) return true;
    }
    RowOp op;
    op.kind = RowOp::Kind::kDelete;
    op.table = def->name;
    op.key = master->KeyOf(row);
    ops.push_back(std::move(op));
    return true;
  });
  RCC_RETURN_NOT_OK(failure);
  if (ops.empty()) {
    QueryResult out;
    out.message = "deleted 0 row(s)";
    out.executed_at = system_->Now();
    return out;
  }
  return ForwardTransaction(system_, std::move(ops), "deleted");
}

Result<QueryPlan> Session::Prepare(const std::string& sql) const {
  RCC_ASSIGN_OR_RETURN(auto select, ParseSelect(sql));
  return system_->cache()->Prepare(*select);
}

Status Session::VerifyConstraint(const QueryPlan& plan) const {
  CacheDbms* cache = system_->cache();
  BackendServer* backend = system_->backend();
  const UpdateLog& log = backend->log();
  SimTimeMs now = system_->Now();
  TxnTimestamp latest = backend->oracle().last_committed();

  // Determine, per input operand, the snapshot it would be served from if
  // the plan ran right now (re-evaluating the currency guards).
  std::map<InputOperandId, semantics::CopyState> sources;
  ExecStats scratch;
  ExecContext ctx = cache->MakeExecContext(&scratch);

  std::function<void(const PhysicalOp&)> walk = [&](const PhysicalOp& op) {
    if (op.kind == PhysOpKind::kSwitchUnion) {
      bool local = SwitchUnionIterator::EvaluateGuard(op, &ctx);
      TxnTimestamp as_of = latest;
      if (local) {
        const CurrencyRegion* region = cache->region(op.guard_region);
        as_of = region != nullptr ? region->as_of() : latest;
      }
      for (InputOperandId oid : op.children[0]->delivered.AllOperands()) {
        if (oid < plan.resolved.operands.size()) {
          semantics::CopyState cs;
          cs.table = plan.resolved.operands[oid].table->name;
          cs.as_of = as_of;
          sources[oid] = cs;
        }
      }
      return;  // don't descend: children share the decision
    }
    if (op.kind == PhysOpKind::kRemoteQuery) {
      for (InputOperandId oid : op.remote_operands) {
        if (oid < plan.resolved.operands.size()) {
          semantics::CopyState cs;
          cs.table = plan.resolved.operands[oid].table->name;
          cs.as_of = latest;
          sources[oid] = cs;
        }
      }
      return;
    }
    if (op.kind == PhysOpKind::kLocalScan && op.target.is_view) {
      // Unguarded local access (ablation mode).
      const ViewDef* view = cache->catalog().FindView(op.target.name);
      const CurrencyRegion* region =
          view != nullptr ? cache->region(view->region) : nullptr;
      semantics::CopyState cs;
      cs.table = plan.resolved.operands[op.operand].table->name;
      cs.as_of = region != nullptr ? region->as_of() : latest;
      sources[op.operand] = cs;
      return;
    }
    for (const auto& child : op.children) walk(*child);
  };
  walk(*plan.root);
  for (const auto& [stmt_ptr, sub] : plan.subplans) walk(*sub.root);

  for (const CcTuple& tuple : plan.resolved.constraint.tuples) {
    std::vector<semantics::CopyState> copies;
    for (InputOperandId oid : tuple.operands) {
      auto it = sources.find(oid);
      if (it != sources.end()) copies.push_back(it->second);
    }
    // Currency: every copy must be within the bound.
    for (const semantics::CopyState& cs : copies) {
      SimTimeMs staleness = semantics::CurrencyOf(log, cs.table, cs.as_of, now);
      if (staleness > tuple.bound_ms) {
        return Status::ConstraintViolation(
            "copy of " + cs.table + " is " + std::to_string(staleness) +
            "ms stale, bound is " + std::to_string(tuple.bound_ms) + "ms");
      }
    }
    // Consistency: the class must be attributable to one snapshot.
    if (!semantics::MutuallyConsistent(log, copies)) {
      return Status::ConstraintViolation(
          "consistency class " + tuple.ToString() +
          " spans incompatible snapshots");
    }
  }
  return Status::OK();
}

}  // namespace rcc
