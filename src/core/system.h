#ifndef RCC_CORE_SYSTEM_H_
#define RCC_CORE_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "backend/backend_server.h"
#include "cache/cache_dbms.h"

namespace rcc {

class Session;

/// System-wide configuration.
struct SystemConfig {
  CostParams costs;
  /// Seed for anything random in the system itself (workloads carry their
  /// own seeds).
  uint64_t seed = 42;
};

/// The complete two-tier system of the paper: a back-end server plus an
/// MTCache instance, wired together with a shared virtual clock and a
/// discrete-event scheduler that drives heartbeats and distribution agents.
///
/// Typical setup:
///   RccSystem sys;
///   sys.backend()->CreateTable(...); sys.backend()->BulkLoad(...);
///   sys.cache()->CreateShadow();
///   sys.cache()->DefineRegion({.cid=1, .update_interval=15000, ...});
///   sys.cache()->CreateView(...);
///   auto session = sys.CreateSession();
///   auto result = session->Execute(
///       "SELECT ... CURRENCY BOUND 10 MIN ON (C)");
class RccSystem {
 public:
  explicit RccSystem(SystemConfig config = {});

  RccSystem(const RccSystem&) = delete;
  RccSystem& operator=(const RccSystem&) = delete;

  BackendServer* backend() { return &backend_; }
  CacheDbms* cache() { return &cache_; }
  VirtualClock* clock() { return &clock_; }
  SimulationScheduler* scheduler() { return &scheduler_; }

  /// Advances virtual time to `t`, firing heartbeats, agent wake-ups and
  /// deliveries along the way.
  void AdvanceTo(SimTimeMs t) { scheduler_.RunUntil(t); }
  void AdvanceBy(SimTimeMs delta) { AdvanceTo(clock_.Now() + delta); }
  SimTimeMs Now() const { return clock_.Now(); }

  /// Creates an application session against the cache.
  std::unique_ptr<Session> CreateSession();

  /// Link-wide resilience counters accumulated across every query executed
  /// through the cache (retries, timeouts, breaker trips, degraded serves).
  const ExecStats& cache_stats() const { return cache_.cumulative_stats(); }

  const SystemConfig& config() const { return config_; }

 private:
  SystemConfig config_;
  VirtualClock clock_;
  SimulationScheduler scheduler_;
  BackendServer backend_;
  CacheDbms cache_;
};

}  // namespace rcc

#endif  // RCC_CORE_SYSTEM_H_
