#ifndef RCC_CORE_SYSTEM_H_
#define RCC_CORE_SYSTEM_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend_server.h"
#include "cache/cache_dbms.h"
#include "common/thread_pool.h"
#include "core/query_result.h"

namespace rcc {

class Session;

/// Options for RccSystem::ExecuteConcurrent.
struct ConcurrentBatchOptions {
  /// Worker threads for the batch; 0 picks ThreadPool::DefaultWorkers().
  /// 1 executes the batch inline on the calling thread (still under the
  /// concurrent-batch contract, so results match the pooled run exactly).
  int workers = 0;
  /// Degradation policy applied to every query of the batch.
  DegradeMode degrade = DegradeMode::kNone;
  /// Timeline floor each query starts from (< 0 disables timeline mode).
  SimTimeMs timeline_floor = -1;
  /// When set, every query additionally reads the cell as its floor and
  /// CAS-maxes its observed snapshot time back into it. Raising a floor is
  /// commutative, so the final cell value is independent of worker
  /// interleaving — this is how a time-ordered session spans a batch.
  std::atomic<SimTimeMs>* floor_cell = nullptr;
  /// Audit-history session tag stamped on every query of the batch
  /// (0 = anonymous).
  uint64_t session_tag = 0;
};

/// System-wide configuration.
struct SystemConfig {
  CostParams costs;
  /// Seed for anything random in the system itself (workloads carry their
  /// own seeds).
  uint64_t seed = 42;
};

/// The complete two-tier system of the paper: a back-end server plus an
/// MTCache instance, wired together with a shared virtual clock and a
/// discrete-event scheduler that drives heartbeats and distribution agents.
///
/// Typical setup:
///   RccSystem sys;
///   sys.backend()->CreateTable(...); sys.backend()->BulkLoad(...);
///   sys.cache()->CreateShadow();
///   sys.cache()->DefineRegion({.cid=1, .update_interval=15000, ...});
///   sys.cache()->CreateView(...);
///   auto session = sys.CreateSession();
///   auto result = session->Execute(
///       "SELECT ... CURRENCY BOUND 10 MIN ON (C)");
class RccSystem {
 public:
  explicit RccSystem(SystemConfig config = {});

  RccSystem(const RccSystem&) = delete;
  RccSystem& operator=(const RccSystem&) = delete;

  BackendServer* backend() { return &backend_; }
  CacheDbms* cache() { return &cache_; }
  VirtualClock* clock() { return &clock_; }
  SimulationScheduler* scheduler() { return &scheduler_; }

  /// Advances virtual time to `t`, firing heartbeats, agent wake-ups and
  /// deliveries along the way.
  void AdvanceTo(SimTimeMs t) { scheduler_.RunUntil(t); }
  void AdvanceBy(SimTimeMs delta) { AdvanceTo(clock_.Now() + delta); }
  SimTimeMs Now() const { return clock_.Now(); }

  /// Creates an application session against the cache.
  std::unique_ptr<Session> CreateSession();

  /// Executes a batch of read-only statements concurrently on a fixed worker
  /// pool and returns one result per statement, in input order.
  ///
  /// Determinism contract (DESIGN.md §8): the virtual clock is frozen for
  /// the whole batch — the scheduler only runs between batches (AdvanceTo /
  /// AdvanceBy), never inside one. Queries take region data locks shared, so
  /// they observe exactly the view state installed by deliveries that fired
  /// before the batch. Result rows, plan choices and per-query stats are
  /// therefore identical for any worker count, including workers=1.
  ///
  /// Only SELECT statements (with optional currency clauses) are accepted;
  /// DML and session-mode statements must go through a Session serially.
  std::vector<Result<QueryResult>> ExecuteConcurrent(
      const std::vector<std::string>& sqls,
      const ConcurrentBatchOptions& opts = {});

  /// Link-wide resilience counters accumulated across every query executed
  /// through the cache (retries, timeouts, breaker trips, degraded serves).
  const ExecStats& cache_stats() const { return cache_.cumulative_stats(); }

  /// Process metrics of this system instance (per-system rather than global,
  /// so parallel tests and benches never bleed counters into each other).
  /// Serialize with metrics().ToJson(); schema documented in DESIGN.md §9.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  const SystemConfig& config() const { return config_; }

  /// Points the whole system — cache query pipeline, replication installs,
  /// and back-end commits — at an execution-audit sink (the simulation
  /// harness's history recorder). Install before defining regions so their
  /// initial population is recorded. Pass nullptr to stop recording.
  void SetHistorySink(HistorySink* sink);
  HistorySink* history_sink() const { return cache_.history_sink(); }

  /// Allocates a process-unique session id (audit-history tag). Ids start at
  /// 1; 0 means "anonymous caller" throughout the audit stream.
  uint64_t NextSessionId() {
    return next_session_id_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  /// Returns the worker pool, (re)creating it when the requested size
  /// changes. The pool is lazy: serial-only programs never spawn threads.
  ThreadPool* EnsurePool(int workers);

  SystemConfig config_;
  VirtualClock clock_;
  SimulationScheduler scheduler_;
  obs::MetricsRegistry metrics_;
  BackendServer backend_;
  CacheDbms cache_;
  std::unique_ptr<ThreadPool> pool_;
  int pool_workers_ = 0;
  std::atomic<uint64_t> next_session_id_{1};
};

}  // namespace rcc

#endif  // RCC_CORE_SYSTEM_H_
