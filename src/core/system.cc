#include "core/system.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <utility>

#include "core/session.h"
#include "sql/parser.h"

namespace rcc {

RccSystem::RccSystem(SystemConfig config)
    : config_(config),
      scheduler_(&clock_),
      backend_(&clock_, config_.costs),
      cache_(&backend_, &scheduler_, config_.costs) {
  cache_.SetMetricsRegistry(&metrics_);
}

std::unique_ptr<Session> RccSystem::CreateSession() {
  return std::make_unique<Session>(this);
}

void RccSystem::SetHistorySink(HistorySink* sink) {
  cache_.SetHistorySink(sink);
  if (sink == nullptr) {
    backend_.set_commit_observer(nullptr);
    return;
  }
  backend_.set_commit_observer([this, sink](const CommittedTxn& txn) {
    sink->OnCommit(txn, clock_.Now());
  });
}

ThreadPool* RccSystem::EnsurePool(int workers) {
  if (pool_ == nullptr || pool_workers_ != workers) {
    pool_.reset();  // join the old pool before spawning the new one
    pool_ = std::make_unique<ThreadPool>(workers);
    pool_workers_ = workers;
  }
  return pool_.get();
}

namespace {

/// Raises `*cell` to at least `seen`. Raising is commutative and monotone,
/// so concurrent calls from any interleaving converge to the same maximum.
void RaiseFloor(std::atomic<SimTimeMs>* cell, SimTimeMs seen) {
  SimTimeMs cur = cell->load(std::memory_order_relaxed);
  while (seen > cur &&
         !cell->compare_exchange_weak(cur, seen, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

std::vector<Result<QueryResult>> RccSystem::ExecuteConcurrent(
    const std::vector<std::string>& sqls, const ConcurrentBatchOptions& opts) {
  const int workers =
      opts.workers > 0 ? opts.workers : ThreadPool::DefaultWorkers();
  // Indexed slots instead of a shared push-back vector: each worker writes
  // only its own element, so result order is input order by construction.
  std::vector<std::optional<Result<QueryResult>>> slots(sqls.size());

  auto run_one = [this, &sqls, &opts](size_t i) -> Result<QueryResult> {
    // Parsing is pure, so it runs inside the worker task too.
    RCC_ASSIGN_OR_RETURN(auto select, ParseSelect(sqls[i]));
    RCC_ASSIGN_OR_RETURN(QueryPlan plan, cache_.Prepare(*select));
    SimTimeMs floor = opts.timeline_floor;
    if (opts.floor_cell != nullptr) {
      floor = std::max(floor,
                       opts.floor_cell->load(std::memory_order_acquire));
    }
    RCC_ASSIGN_OR_RETURN(CacheQueryOutcome outcome,
                         cache_.ExecutePrepared(plan, floor, opts.degrade,
                                                nullptr, opts.session_tag));
    if (opts.floor_cell != nullptr && outcome.max_seen_heartbeat >= 0) {
      RaiseFloor(opts.floor_cell, outcome.max_seen_heartbeat);
    }
    return MakeQueryResult(std::move(outcome));
  };

  cache_.BeginConcurrentBatch();
  if (workers <= 1) {
    // Inline execution under the same batch contract — the equivalence
    // baseline for the pooled runs (and what tests compare against).
    for (size_t i = 0; i < sqls.size(); ++i) slots[i] = run_one(i);
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(sqls.size());
    for (size_t i = 0; i < sqls.size(); ++i) {
      tasks.push_back([&run_one, &slots, i] { slots[i] = run_one(i); });
    }
    EnsurePool(workers)->Run(std::move(tasks));
  }
  cache_.EndConcurrentBatch();

  std::vector<Result<QueryResult>> results;
  results.reserve(slots.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace rcc
