#include "core/system.h"

#include "core/session.h"

namespace rcc {

RccSystem::RccSystem(SystemConfig config)
    : config_(config),
      scheduler_(&clock_),
      backend_(&clock_, config_.costs),
      cache_(&backend_, &scheduler_, config_.costs) {}

std::unique_ptr<Session> RccSystem::CreateSession() {
  return std::make_unique<Session>(this);
}

}  // namespace rcc
