#ifndef RCC_OBS_TRACE_H_
#define RCC_OBS_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"

namespace rcc {
namespace obs {

/// The trace event vocabulary (DESIGN.md §9). One query produces one ordered
/// stream of these; every event carries the virtual time it happened at plus
/// a rendered `key=value` payload.
enum class TraceEventKind {
  /// Currency-guard probe: heartbeat (or "unknown"), bound, timeline floor,
  /// verdict.
  kGuardProbe,
  /// SwitchUnion branch decision: region, branch, reason.
  kSwitchDecision,
  /// One attempt on the cache↔back-end link: attempt number, latency, result.
  kRemoteAttempt,
  /// Backoff wait before a retry: retry number, delay.
  kRemoteBackoff,
  /// An attempt abandoned at the per-attempt timeout.
  kRemoteTimeout,
  /// The circuit breaker tripped open (cooldown deadline in the payload).
  kBreakerOpen,
  /// A call failed fast against an already-open breaker.
  kBreakerFastFail,
  /// A remote statement completed and returned rows.
  kRemoteFetch,
  /// The query was answered from a local view after remote failure: region,
  /// staleness, degrade mode.
  kDegradedServe,
  /// The query was answered from a local view *pre-emptively* under overload
  /// pressure (admission-layer shed hint), without attempting the remote
  /// branch: region, staleness, within_bound.
  kShedServe,
  /// A replication delivery landed while this query waited (retry backoff):
  /// region, ops applied, new heartbeat.
  kReplicationDelivery,
  /// A region's replication-pipeline health changed: region, from, to.
  kRegionHealth,
};

std::string_view TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kGuardProbe;
  /// Virtual time the event happened at.
  SimTimeMs at = 0;
  /// Currency region the event concerns; -1 when not region-scoped.
  int64_t region = -1;
  /// Rendered `key=value` payload.
  std::string detail;
};

/// Structured per-query trace. A trace is owned by one query execution and
/// only ever appended to from the thread running that query, so recording
/// needs no synchronization. Iterator code reaches it through
/// `ExecContext::trace`, which is null when tracing is off — the disabled
/// path costs one pointer compare per would-be event.
class QueryTrace {
 public:
  void Record(TraceEventKind kind, SimTimeMs at, std::string detail,
              int64_t region = -1) {
    events_.push_back(TraceEvent{kind, at, region, std::move(detail)});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  int CountOf(TraceEventKind kind) const;
  const TraceEvent* FirstOf(TraceEventKind kind) const;

  /// Multi-line rendering, one `[time] kind detail` line per event.
  std::string Render() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace obs
}  // namespace rcc

#endif  // RCC_OBS_TRACE_H_
