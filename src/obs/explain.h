#ifndef RCC_OBS_EXPLAIN_H_
#define RCC_OBS_EXPLAIN_H_

#include <string>

#include "obs/trace.h"
#include "plan/physical.h"

namespace rcc {

struct ExecStats;

namespace obs {

/// Renders the physical plan of an optimized query: the operator tree with
/// SwitchUnion branches labelled local/remote, the estimated guard-pass
/// probability p (paper Eq. (1)), per-operator row/cost estimates, and the
/// normalized C&C constraint. This is the `EXPLAIN <select>` output.
/// `cached` = true marks a plan served from the parameterized plan cache
/// (the "plan: cached" line), so applications can tell a fresh optimization
/// from a reuse at a glance.
std::string RenderExplain(const QueryPlan& plan, bool cached);
inline std::string RenderExplain(const QueryPlan& plan) {
  return RenderExplain(plan, false);
}

/// `EXPLAIN ANALYZE <select>`: the RenderExplain output followed by what the
/// execution actually did — per-guard estimated vs. actual branch choice, the
/// recorded trace (guard probes with heartbeat/bound/verdict, retries,
/// breaker events, degraded serves, replication deliveries observed), and the
/// executed stats (paper Tables 4.4/4.5 measurements).
std::string RenderExplainAnalyze(const QueryPlan& plan, const ExecStats& stats,
                                 const QueryTrace& trace, bool cached);
inline std::string RenderExplainAnalyze(const QueryPlan& plan,
                                        const ExecStats& stats,
                                        const QueryTrace& trace) {
  return RenderExplainAnalyze(plan, stats, trace, false);
}

}  // namespace obs
}  // namespace rcc

#endif  // RCC_OBS_EXPLAIN_H_
