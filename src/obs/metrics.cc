#include "obs/metrics.h"

#include "common/strings.h"

namespace rcc {
namespace obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

namespace {

/// JSON number rendering: integers stay integral, doubles use shortest form.
std::string JsonNum(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  return StrPrintf("%.6g", v);
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::string out = "{\n  \"schema\": \"rcc.metrics.v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + JsonNum(g->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": " + std::to_string(h->count()) +
           ", \"sum\": " + JsonNum(h->sum()) + ", \"buckets\": [";
    const std::vector<double>& bounds = h->bounds();
    for (size_t i = 0; i <= bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < bounds.size() ? JsonNum(bounds[i]) : "\"+inf\"";
      out += ", \"n\": " + std::to_string(h->bucket_count(i)) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* kGlobal = new MetricsRegistry();
  return kGlobal;
}

std::vector<double> MetricsRegistry::DefaultLatencyBucketsMs() {
  return {0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100,
          500,  1000, 5000, 10000, 50000, 100000};
}

std::string MetricsRegistry::NodeMetricName(std::string_view prefix, int node,
                                            std::string_view leaf) {
  std::string name(prefix);
  name += ".node.";
  name += std::to_string(node);
  name += '.';
  name += leaf;
  return name;
}

}  // namespace obs
}  // namespace rcc
