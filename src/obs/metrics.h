#ifndef RCC_OBS_METRICS_H_
#define RCC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rcc {
namespace obs {

/// A monotonically increasing counter. Recording is one relaxed atomic add —
/// safe from any thread, cheap enough for per-row paths.
class Counter {
 public:
  void Add(int64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// A last-value (or max-tracked) gauge.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to at least `v` (commutative, safe concurrently).
  void Max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// A fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// one implicit overflow bucket catches everything above the last bound.
/// Observe is a linear probe over a handful of buckets plus two relaxed
/// atomics — no locks, so it composes with any lock held by the caller.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i`; i == bounds().size() is the overflow bucket.
  int64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// A named collection of counters, gauges and histograms with a JSON dump
/// (schema: DESIGN.md §9). Instrument lookup (get-or-create) takes a leaf
/// mutex and returns a stable pointer, so hot paths resolve their instruments
/// once and record lock-free afterwards. RccSystem owns one registry per
/// system (deterministic tests); Global() is a process-wide instance for
/// programs that aggregate across systems.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  /// `bounds` is only consulted when the histogram is first created.
  Histogram* histogram(std::string_view name, std::vector<double> bounds);
  Histogram* histogram(std::string_view name) {
    return histogram(name, DefaultLatencyBucketsMs());
  }

  /// Serializes every instrument as one JSON object:
  ///   {"schema":"rcc.metrics.v1",
  ///    "counters":{name:int,...}, "gauges":{name:num,...},
  ///    "histograms":{name:{"count":int,"sum":num,
  ///                        "buckets":[{"le":num|"+inf","n":int},...]},...}}
  std::string ToJson() const;

  /// Zeroes every instrument, keeping registrations (and pointers) valid.
  void Reset();

  /// Process-wide registry.
  static MetricsRegistry* Global();

  /// Builds a per-node instrument name: prefix + ".node." + node + "." +
  /// leaf (e.g. "rcc.fleet" / 3 / "routed" → "rcc.fleet.node.3.routed").
  /// The fleet vocabulary's analogue of the per-region
  /// `rcc.replication.region_health.<cid>` convention.
  static std::string NodeMetricName(std::string_view prefix, int node,
                                    std::string_view leaf);

  /// Exponential ms buckets suitable for both sub-ms guard probes and
  /// multi-second degraded staleness: 0.01ms .. ~100s.
  static std::vector<double> DefaultLatencyBucketsMs();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace rcc

#endif  // RCC_OBS_METRICS_H_
