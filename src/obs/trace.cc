#include "obs/trace.h"

#include "common/strings.h"

namespace rcc {
namespace obs {

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kGuardProbe:
      return "guard_probe";
    case TraceEventKind::kSwitchDecision:
      return "switch_decision";
    case TraceEventKind::kRemoteAttempt:
      return "remote_attempt";
    case TraceEventKind::kRemoteBackoff:
      return "remote_backoff";
    case TraceEventKind::kRemoteTimeout:
      return "remote_timeout";
    case TraceEventKind::kBreakerOpen:
      return "breaker_open";
    case TraceEventKind::kBreakerFastFail:
      return "breaker_fastfail";
    case TraceEventKind::kRemoteFetch:
      return "remote_fetch";
    case TraceEventKind::kDegradedServe:
      return "degraded_serve";
    case TraceEventKind::kShedServe:
      return "shed_serve";
    case TraceEventKind::kReplicationDelivery:
      return "replication_delivery";
    case TraceEventKind::kRegionHealth:
      return "region_health";
  }
  return "?";
}

int QueryTrace::CountOf(TraceEventKind kind) const {
  int n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

const TraceEvent* QueryTrace::FirstOf(TraceEventKind kind) const {
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) return &e;
  }
  return nullptr;
}

std::string QueryTrace::Render() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    out += StrPrintf("[%s] %-20s %s\n", FormatSimTime(e.at).c_str(),
                     std::string(TraceEventKindName(e.kind)).c_str(),
                     e.detail.c_str());
  }
  return out;
}

}  // namespace obs
}  // namespace rcc
