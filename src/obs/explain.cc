#include "obs/explain.h"

#include <vector>

#include "common/strings.h"
#include "exec/exec_context.h"

namespace rcc {
namespace obs {

namespace {

/// One plan line: indentation, optional branch label, operator description,
/// and the estimated guard-pass probability on SwitchUnion nodes.
void RenderOp(const PhysicalOp& op, int indent, const char* label,
              std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  if (label != nullptr) {
    *out += label;
    *out += ": ";
  }
  *out += op.Describe();
  if (op.kind == PhysOpKind::kSwitchUnion && op.est_local_p >= 0) {
    *out += StrPrintf(" est_p_local=%.2f", op.est_local_p);
  }
  *out += "\n";
  if (op.kind == PhysOpKind::kSwitchUnion && op.children.size() == 2) {
    RenderOp(*op.children[0], indent + 1, "local", out);
    RenderOp(*op.children[1], indent + 1, "remote", out);
    return;
  }
  for (const auto& child : op.children) {
    RenderOp(*child, indent + 1, nullptr, out);
  }
}

/// Collects the SwitchUnion nodes of the plan (root tree plus subplans), in
/// render order.
void CollectSwitches(const PhysicalOp& op,
                     std::vector<const PhysicalOp*>* out) {
  if (op.kind == PhysOpKind::kSwitchUnion) out->push_back(&op);
  for (const auto& child : op.children) CollectSwitches(*child, out);
}

}  // namespace

std::string RenderExplain(const QueryPlan& plan, bool cached) {
  std::string out = StrPrintf(
      "plan shape: %s\nest cost: %.3f\n",
      std::string(PlanShapeName(plan.Shape())).c_str(), plan.est_cost);
  if (cached) out += "plan: cached\n";
  std::string constraint = plan.resolved.constraint.ToString();
  if (!constraint.empty()) out += "constraint: " + constraint + "\n";
  RenderOp(*plan.root, 0, nullptr, &out);
  for (const auto& [stmt, sub] : plan.subplans) {
    out += "subplan:\n";
    RenderOp(*sub.root, 1, nullptr, &out);
  }
  return out;
}

std::string RenderExplainAnalyze(const QueryPlan& plan, const ExecStats& stats,
                                 const QueryTrace& trace, bool cached) {
  std::string out = RenderExplain(plan, cached);

  // Estimated vs. actual branch choice, one line per guard decision. A
  // degraded switch shows up as an extra decision on the same region.
  out += "-- guards --\n";
  std::vector<const PhysicalOp*> switches;
  CollectSwitches(*plan.root, &switches);
  for (const auto& [stmt, sub] : plan.subplans) {
    CollectSwitches(*sub.root, &switches);
  }
  std::vector<bool> consumed(switches.size(), false);
  // Pipeline health at guard time rides in the guard-probe payload
  // ("health=<state>"); carry the latest probe's health forward onto the
  // decision line so a quarantined region is visible at a glance.
  std::string last_health;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == TraceEventKind::kGuardProbe) {
      size_t pos = e.detail.find("health=");
      last_health =
          pos == std::string::npos ? std::string() : e.detail.substr(pos);
      continue;
    }
    if (e.kind != TraceEventKind::kSwitchDecision) continue;
    double est_p = -1;
    for (size_t i = 0; i < switches.size(); ++i) {
      if (!consumed[i] && switches[i]->guard_region == e.region) {
        est_p = switches[i]->est_local_p;
        consumed[i] = true;
        break;
      }
    }
    out += StrPrintf("guard region=%lld est_p_local=%.2f actual: %s%s%s\n",
                     static_cast<long long>(e.region), est_p, e.detail.c_str(),
                     last_health.empty() ? "" : " ", last_health.c_str());
  }

  out += "-- trace --\n";
  out += trace.Render();

  out += "-- stats --\n";
  out += StrPrintf(
      "rows=%lld remote_queries=%lld guard_evaluations=%lld\n"
      "guard refusals: unknown_region=%lld quarantined_region=%lld\n"
      "switch: local=%lld remote=%lld remote_attempted=%lld\n"
      "resilience: retries=%lld timeouts=%lld breaker_opens=%lld\n"
      "degraded: serves=%lld max_staleness=%s\n"
      "phases: setup=%.3fms run=%.3fms shutdown=%.3fms\n",
      static_cast<long long>(stats.rows_returned),
      static_cast<long long>(stats.remote_queries),
      static_cast<long long>(stats.guard_evaluations),
      static_cast<long long>(stats.guard_unknown_region),
      static_cast<long long>(stats.guard_quarantined_region),
      static_cast<long long>(stats.switch_local),
      static_cast<long long>(stats.switch_remote),
      static_cast<long long>(stats.switch_remote_attempted),
      static_cast<long long>(stats.remote_retries),
      static_cast<long long>(stats.remote_timeouts),
      static_cast<long long>(stats.breaker_opens),
      static_cast<long long>(stats.degraded_serves),
      FormatSimTime(stats.degraded_staleness_ms).c_str(), stats.setup_ms,
      stats.run_ms, stats.shutdown_ms);
  return out;
}

}  // namespace obs
}  // namespace rcc
