#ifndef RCC_CACHE_CACHE_DBMS_H_
#define RCC_CACHE_CACHE_DBMS_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "backend/backend_server.h"
#include "backend/fault_injector.h"
#include "exec/remote_policy.h"
#include "plan/plan_cache.h"
#include "replication/agent.h"
#include "replication/region.h"

namespace rcc {

/// Outcome of one query executed through the cache: the rows plus everything
/// an application (or a test) may want to inspect about how the C&C
/// constraints were handled.
struct CacheQueryOutcome {
  ExecutedQuery result;
  ExecStats stats;
  PlanShape shape = PlanShape::kRemoteOnly;
  std::string plan_text;
  NormalizedConstraint constraint;
  SimTimeMs executed_at = 0;
  /// Highest source snapshot time the query observed (timeline tracking).
  SimTimeMs max_seen_heartbeat = -1;
};

/// MTCache: the mid-tier database cache (paper §3). It holds a shadow
/// catalog (back-end schema + statistics, empty tables), materialized views
/// maintained by transactional replication, currency regions with local
/// heartbeats, and a cost-based optimizer extended with consistency
/// properties and currency guards.
class CacheDbms {
 public:
  /// `backend` and `scheduler` must outlive the cache.
  CacheDbms(BackendServer* backend, SimulationScheduler* scheduler,
            CostParams costs)
      : backend_(backend), scheduler_(scheduler), costs_(costs) {}

  CacheDbms(const CacheDbms&) = delete;
  CacheDbms& operator=(const CacheDbms&) = delete;

  /// Stops every distribution agent before the regions they reference are
  /// torn down: scheduler events outliving the cache are cancelled, not
  /// left to dereference freed regions.
  ~CacheDbms() {
    for (auto& agent : agents_) agent->Stop();
  }

  /// -- setup -----------------------------------------------------------------

  /// Builds the shadow database: copies every back-end table definition and
  /// its statistics into the local catalog (tables stay empty; paper §3
  /// item 1). Call after the back-end schema is loaded.
  Status CreateShadow();

  /// Defines a currency region: catalog entry, runtime state, distribution
  /// agent (started at its first update_interval), and the back-end
  /// heartbeat row.
  Status DefineRegion(const RegionDef& def);

  /// Creates a materialized view, populates it from the current master data
  /// (the replication subscription's initial snapshot), and attaches it to
  /// its currency region. Views should be created before update traffic
  /// starts (matching the prototype's static cache configuration).
  Status CreateView(const ViewDef& def);

  /// Registers a logical (non-materialized) view usable in queries.
  Status CreateLogicalView(const std::string& name, const std::string& sql);

  /// Replaces a table's optimizer statistics (the periodic statistics
  /// refresh) and invalidates the plan cache: a row-count change can flip
  /// the Eq. 1 local-vs-remote winner, so plans priced under the old stats
  /// must not be served again.
  Status UpdateStatistics(const std::string& table, TableStats stats);

  /// -- cache↔back-end link resilience -----------------------------------------

  /// Installs a fault injector on the remote-query channel (latency spikes,
  /// transient errors, outage windows; see FaultInjectorConfig). Replaces
  /// any previous injector. Replication is unaffected: the injector models
  /// the query channel only.
  void SetFaultInjector(FaultInjectorConfig config);
  void ClearFaultInjector();
  FaultInjector* fault_injector() { return fault_injector_.get(); }

  /// Installs the resilient remote-execution policy (timeout, retries with
  /// backoff, circuit breaker). Without it, remote queries are one bare
  /// attempt — any failure surfaces immediately ("vanilla" behaviour).
  /// While the policy waits (attempt latency, backoff) the simulation
  /// scheduler advances, so heartbeats and replication deliveries land
  /// during the wait.
  void SetRemotePolicy(RemotePolicy policy);
  void ClearRemotePolicy();
  ResilientRemoteExecutor* remote_policy() { return remote_policy_.get(); }

  /// -- replication-pipeline resilience ----------------------------------------

  /// Installs a replication fault injector on every distribution agent
  /// (drops, delays, duplicates, stalls, poisoned ops; see
  /// ReplicationFaultConfig). Each agent gets its own injector seeded with
  /// `config.seed + region id`, so regions fault independently but the whole
  /// schedule is reproducible. Regions defined later inherit the config.
  void SetReplicationFaults(ReplicationFaultConfig config);
  void ClearReplicationFaults();

  /// -- query pipeline -----------------------------------------------------------

  /// Parses nothing: takes an AST. Resolves, optimizes (cache mode) and
  /// returns the plan without executing — the optimizer-experiment entry.
  Result<QueryPlan> Prepare(const SelectStmt& stmt) const;
  Result<QueryPlan> Prepare(const SelectStmt& stmt,
                            const OptimizerOptions& opts) const;

  /// Executes a prepared plan. `timeline_floor` < 0 disables timeline mode;
  /// `degrade` controls stale-serve behaviour when the remote branch fails.
  /// `trace`, when non-null, receives the query's structured event trace
  /// (guard probes, switch decisions, retry/breaker events, degraded serves,
  /// and — in serial mode — replication deliveries landing mid-query).
  /// `session_tag` identifies the issuing session in the audit history
  /// (0 = anonymous caller).
  Result<CacheQueryOutcome> ExecutePrepared(
      const QueryPlan& plan, SimTimeMs timeline_floor = -1,
      DegradeMode degrade = DegradeMode::kNone,
      obs::QueryTrace* trace = nullptr, uint64_t session_tag = 0);

  /// Everything ExecutePrepared needs, in struct form (the plan-cache fast
  /// path has more knobs than positional arguments stay readable for).
  struct PreparedExecOptions {
    SimTimeMs timeline_floor = -1;
    /// Mode the query *behaves* under — refusal ladder, degraded serves.
    /// For a cached plan this is the mode the plan was created under.
    DegradeMode degrade = DegradeMode::kNone;
    /// Mode recorded in the audit history (defaults to `degrade`). The
    /// session's *current* mode: under a correct cache key the two always
    /// agree, so any divergence (a plan created under ALWAYS served while
    /// the session is at NONE — the RCC_PLANCACHE_MUTATE planted bug) shows
    /// up as a degraded serve recorded under a mode that never authorized
    /// one, which the conformance oracle's R3 rule rejects.
    std::optional<DegradeMode> audit_degrade;
    obs::QueryTrace* trace = nullptr;
    uint64_t session_tag = 0;
    /// Execution-time parameter values for kParam slots of a cached plan.
    const std::vector<Value>* params = nullptr;
    /// Real-time cancellation deadline (default: none). Checked at executor
    /// batch boundaries and in the remote retry loop; an expired statement
    /// answers DeadlineExceeded and releases its snapshot pin immediately.
    Deadline deadline;
    /// Overload-shedding hint from the admission layer: prefer the permitted
    /// degraded-local branch over a remote round-trip (see
    /// SwitchUnionIterator::ShedEligible — guard semantics are never
    /// weakened).
    bool shed_hint = false;
    /// Audit query id pre-allocated by the caller (the fleet router opens
    /// the query with BeginQuery so its route observation and this
    /// execution's guard/serve/answer events correlate). 0 = allocate here,
    /// as every non-routed caller does.
    uint64_t history_query_id = 0;
  };
  Result<CacheQueryOutcome> ExecutePrepared(const QueryPlan& plan,
                                            const PreparedExecOptions& opts);

  /// Full pipeline: resolve + optimize + execute.
  Result<CacheQueryOutcome> Execute(const SelectStmt& stmt,
                                    SimTimeMs timeline_floor = -1,
                                    DegradeMode degrade = DegradeMode::kNone,
                                    obs::QueryTrace* trace = nullptr,
                                    uint64_t session_tag = 0);

  /// -- concurrent batch mode ---------------------------------------------------

  /// Enters concurrent-batch mode (`RccSystem::ExecuteConcurrent`). While
  /// active: (a) the remote channel is serialized behind a mutex
  /// (policy/injector state is single-threaded); (b) resilience-policy waits
  /// stop advancing the simulation scheduler, freezing the virtual clock so
  /// every query in the batch observes the same instant. Queries need no
  /// region locks at all: each pins an epoch and reads immutable published
  /// snapshots (DESIGN.md §13). The scheduler must only be run between
  /// batches (the determinism contract; see DESIGN.md §8).
  ///
  /// Begin/End are *counted*, not a flag: the network server holds
  /// concurrent-batch mode for its whole lifetime while a connection's
  /// Session::ExecuteBatch opens a nested batch inside it — with a bool,
  /// the inner End would have switched the still-running server back to
  /// serial mode (unlocked remote channel, clock allowed to advance).
  void BeginConcurrentBatch() {
    concurrent_batch_depth_.fetch_add(1, std::memory_order_acq_rel);
  }
  void EndConcurrentBatch() {
    concurrent_batch_depth_.fetch_sub(1, std::memory_order_acq_rel);
  }
  bool in_concurrent_batch() const {
    return concurrent_batch_depth_.load(std::memory_order_acquire) > 0;
  }

  /// The shared epoch manager (read-only use: leak checks assert
  /// `MinPinnedEpoch() == current_epoch()` once all readers finished).
  const SnapshotEpochManager& epoch_manager() const { return *epochs_; }

  /// -- accessors -------------------------------------------------------------------
  const Catalog& catalog() const { return catalog_; }
  BackendServer* backend() const { return backend_; }
  CurrencyRegion* region(RegionId cid);
  const CurrencyRegion* region(RegionId cid) const;
  /// The named view in its region's *current* snapshot; the shared_ptr keeps
  /// it alive across subsequent publishes. nullptr when unknown.
  std::shared_ptr<const MaterializedView> view(std::string_view name) const;
  const std::vector<std::unique_ptr<DistributionAgent>>& agents() const {
    return agents_;
  }
  /// Local heartbeat value for a region (the currency-guard input); nullopt
  /// when the region is unknown — guards must treat that as "freshness not
  /// certifiable", not as stale-since-simulation-start — or when the region
  /// is quarantined/resyncing: a quarantine withdraws the certified
  /// heartbeat, so guards refuse and SET DEGRADE refuses too.
  std::optional<SimTimeMs> LocalHeartbeat(RegionId cid) const;

  /// Replication-pipeline health of a region; kHealthy for unknown regions
  /// (the unknown-ness already surfaces through LocalHeartbeat).
  RegionHealth RegionHealthOf(RegionId cid) const;

  const CostParams& costs() const { return costs_; }
  OptimizerOptions default_options() const;

  /// The parameterized plan cache sessions consult before parsing. Owned
  /// here (not per session) so all sessions share plans and one invalidation
  /// covers everyone.
  PlanCache& plan_cache() { return plan_cache_; }
  const PlanCache& plan_cache() const { return plan_cache_; }

  /// Builds the ExecContext used for local execution (exposed for benches
  /// that drive the executor directly).
  ExecContext MakeExecContext(ExecStats* stats, SimTimeMs timeline_floor = -1,
                              DegradeMode degrade = DegradeMode::kNone,
                              obs::QueryTrace* trace = nullptr) const;

  /// Counters accumulated over every query executed through this cache
  /// (retries, timeouts, degraded serves, breaker trips, ...).
  const ExecStats& cumulative_stats() const { return cumulative_stats_; }
  void ResetCumulativeStats() { cumulative_stats_.Reset(); }

  /// -- observability -----------------------------------------------------------

  /// Points the cache at a metrics registry (usually the owning system's).
  /// Instrument pointers are resolved once here, so per-query recording never
  /// takes the registry lock. Pass nullptr to stop recording. See DESIGN.md
  /// §9 for the metric name vocabulary.
  void SetMetricsRegistry(obs::MetricsRegistry* registry);
  obs::MetricsRegistry* metrics_registry() const { return metrics_; }

  /// Points the cache at an execution-audit sink (the simulation harness's
  /// history recorder). While set, every query, serve decision, guard probe,
  /// replication install, and health transition is reported. Install before
  /// defining regions so their initial population is part of the history;
  /// regions already defined are reported retroactively at their current
  /// state. Pass nullptr to stop recording.
  void SetHistorySink(HistorySink* sink);
  HistorySink* history_sink() const { return sink_; }

 private:
  /// Registry-resolved instruments, null when no registry is installed. All
  /// are atomically updatable, so concurrent-batch workers record directly.
  struct Instruments {
    obs::Counter* queries = nullptr;
    obs::Counter* switch_local = nullptr;
    obs::Counter* switch_remote = nullptr;
    obs::Counter* switch_remote_attempted = nullptr;
    obs::Counter* remote_retries = nullptr;
    obs::Counter* remote_timeouts = nullptr;
    obs::Counter* breaker_opens = nullptr;
    obs::Counter* degraded_serves = nullptr;
    obs::Counter* shed_serves = nullptr;
    obs::Counter* deadline_timeouts = nullptr;
    obs::Counter* replication_deliveries = nullptr;
    obs::Counter* replication_quarantines = nullptr;
    obs::Counter* replication_resyncs = nullptr;
    obs::Histogram* guard_probe_ms = nullptr;
    obs::Histogram* query_run_ms = nullptr;
    obs::Histogram* served_staleness_ms = nullptr;
  };

  /// Folds one finished query's stats into the registry instruments.
  void RecordQueryMetrics(const ExecStats& stats, SimTimeMs now) const;

  /// DistributionAgent callback: counts the delivery and, when a serial-mode
  /// query is mid-flight with tracing on, records it into that query's trace.
  void OnDelivery(RegionId region, SimTimeMs at, int64_t ops,
                  std::optional<SimTimeMs> heartbeat);

  /// DistributionAgent health callback: updates the per-region health gauge
  /// (`rcc.replication.region_health.<cid>`), the quarantine/resync
  /// counters, and the serial-mode query trace.
  void OnHealthChange(RegionId region, RegionHealth from, RegionHealth to,
                      SimTimeMs at);

  /// One remote execution through the configured stack: policy (if any) over
  /// injector (if any) over the back-end adapter. `deadline` bounds the
  /// policy's retry loop in real time.
  Result<RemoteResult> ExecuteRemote(const SelectStmt& stmt, ExecStats* stats,
                                     obs::QueryTrace* trace,
                                     Deadline deadline = Deadline::None()) const;
  /// The attempt function feeding the policy layer (injector-wrapped or
  /// plain back-end).
  RemoteAttemptFn MakeAttemptFn() const;
  BackendServer* backend_;
  SimulationScheduler* scheduler_;
  CostParams costs_;
  Catalog catalog_;
  /// Lower-cased view name → owning region. The views themselves live inside
  /// the regions' published snapshots.
  std::map<std::string, RegionId> view_regions_;
  std::map<RegionId, std::unique_ptr<CurrencyRegion>> regions_;
  /// Shared by every region, so one query pin covers all regions it reads.
  std::shared_ptr<SnapshotEpochManager> epochs_ =
      std::make_shared<SnapshotEpochManager>();
  std::vector<std::unique_ptr<DistributionAgent>> agents_;
  std::unique_ptr<FaultInjector> fault_injector_;
  std::unique_ptr<ResilientRemoteExecutor> remote_policy_;
  /// Replication fault config applied to every agent (present regions and
  /// ones defined later); nullopt = fault-free replication.
  std::optional<ReplicationFaultConfig> replication_faults_;
  obs::MetricsRegistry* metrics_ = nullptr;
  Instruments inst_;
  PlanCache plan_cache_;
  HistorySink* sink_ = nullptr;
  /// Trace of the serial-mode query currently executing; deliveries landing
  /// while the policy waits are recorded into it. Never set in
  /// concurrent-batch mode (the frozen clock means no deliveries fire
  /// mid-batch, and workers would race on one pointer).
  obs::QueryTrace* active_trace_ = nullptr;
  ExecStats cumulative_stats_;
  /// Guards cumulative_stats_: queries of a concurrent batch accumulate from
  /// worker threads.
  std::mutex stats_mutex_;
  /// Serializes the remote channel (policy retries/breaker, injector RNG,
  /// back-end executor stats are all single-threaded state).
  mutable std::mutex remote_mutex_;
  /// Nesting depth of BeginConcurrentBatch (see its comment).
  std::atomic<int> concurrent_batch_depth_{0};
};

}  // namespace rcc

#endif  // RCC_CACHE_CACHE_DBMS_H_
