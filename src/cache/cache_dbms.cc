#include "cache/cache_dbms.h"

#include "common/strings.h"
#include "semantics/resolver.h"

namespace rcc {

Status CacheDbms::CreateShadow() {
  for (const std::string& name : backend_->catalog().TableNames()) {
    const TableDef* def = backend_->catalog().FindTable(name);
    RCC_RETURN_NOT_OK(catalog_.AddTable(*def));
    catalog_.SetStats(name, backend_->catalog().GetStats(name));
  }
  plan_cache_.Invalidate();
  return Status::OK();
}

Status CacheDbms::DefineRegion(const RegionDef& def) {
  RCC_RETURN_NOT_OK(catalog_.AddRegion(def));
  auto region = std::make_unique<CurrencyRegion>(def, epochs_);
  // The initial population reflects the back-end as of "now".
  region->set_local_heartbeat(backend_->clock()->Now());
  region->set_as_of(backend_->oracle().last_committed());
  region->set_applied_log_pos(backend_->log().size());
  auto agent = std::make_unique<DistributionAgent>(
      region.get(), &backend_->log(), &backend_->heartbeat(), scheduler_);
  agent->set_delivery_observer(
      [this](RegionId cid, SimTimeMs at, int64_t ops,
             std::optional<SimTimeMs> hb) { OnDelivery(cid, at, ops, hb); });
  agent->set_health_observer(
      [this](RegionId cid, RegionHealth from, RegionHealth to,
             SimTimeMs at) { OnHealthChange(cid, from, to, at); });
  // Resync snapshots come straight from the back-end masters — the same
  // source the initial view population used.
  agent->set_master_table_provider(
      [this](const std::string& table) { return backend_->table(table); });
  // Wired unconditionally (the lambda no-ops without a sink), so a sink
  // installed later still sees deliveries of regions defined earlier.
  agent->set_install_observer(
      [this](RegionId cid, SimTimeMs at, TxnTimestamp as_of, SimTimeMs hb,
             int64_t ops, bool resync) {
        if (sink_ == nullptr) return;
        InstallObservation obs;
        obs.kind = resync ? InstallObservation::Kind::kResync
                          : InstallObservation::Kind::kDelivery;
        obs.region = cid;
        obs.at = at;
        obs.as_of = as_of;
        obs.heartbeat = hb;
        obs.ops = ops;
        sink_->OnInstall(obs);
      });
  if (replication_faults_.has_value()) {
    ReplicationFaultConfig cfg = *replication_faults_;
    cfg.seed += static_cast<uint64_t>(def.cid);
    agent->SetFaultConfig(cfg);
  }
  agent->Start(backend_->clock()->Now() + def.update_interval);
  backend_->RegisterRegionHeartbeat(def, scheduler_);
  if (metrics_ != nullptr) {
    metrics_
        ->gauge(StrPrintf("rcc.replication.region_health.%d",
                          static_cast<int>(def.cid)))
        ->Set(static_cast<double>(static_cast<int>(region->health())));
  }
  if (sink_ != nullptr) {
    std::shared_ptr<const RegionSnapshot> snap = region->Snapshot();
    InstallObservation obs;
    obs.kind = InstallObservation::Kind::kInitial;
    obs.region = def.cid;
    obs.at = backend_->clock()->Now();
    obs.as_of = snap->as_of;
    obs.heartbeat = snap->heartbeat;
    sink_->OnInstall(obs);
  }
  regions_[def.cid] = std::move(region);
  agents_.push_back(std::move(agent));
  plan_cache_.Invalidate();
  return Status::OK();
}

Status CacheDbms::CreateView(const ViewDef& def) {
  RCC_RETURN_NOT_OK(catalog_.AddView(def));
  const TableDef* source = catalog_.FindTable(def.source_table);
  RCC_ASSIGN_OR_RETURN(auto view, MaterializedView::Create(def, *source));
  const Table* master = backend_->table(def.source_table);
  if (master == nullptr) {
    return Status::NotFound("master table " + def.source_table + " missing");
  }
  view->PopulateFrom(*master);
  // Secondary indexes declared on the view.
  for (const IndexDef& idx : def.secondary_indexes) {
    std::vector<size_t> cols =
        Catalog::ResolveColumns(view->schema(), idx.columns);
    RCC_RETURN_NOT_OK(
        view->mutable_data().CreateSecondaryIndex(idx.name, std::move(cols)));
  }
  auto rit = regions_.find(def.region);
  if (rit == regions_.end()) {
    return Status::NotFound("region " + std::to_string(def.region) +
                            " not defined");
  }
  // The view is fully built (populated + indexed) before it enters the
  // region's published snapshot; from here on it is immutable and only
  // replaced wholesale by delivery/resync clones.
  rit->second->AddView(std::shared_ptr<MaterializedView>(std::move(view)));
  view_regions_[ToLower(def.name)] = def.region;
  plan_cache_.Invalidate();
  return Status::OK();
}

Status CacheDbms::CreateLogicalView(const std::string& name,
                                    const std::string& sql) {
  RCC_RETURN_NOT_OK(catalog_.AddLogicalView(name, sql));
  plan_cache_.Invalidate();
  return Status::OK();
}

Status CacheDbms::UpdateStatistics(const std::string& table,
                                   TableStats stats) {
  if (catalog_.FindTable(table) == nullptr) {
    return Status::NotFound("table " + table + " not in catalog");
  }
  catalog_.SetStats(table, stats);
  // The Eq. 1 local-vs-remote decision is priced off these statistics; any
  // plan chosen under the old numbers may no longer be the winner (or worse,
  // may seek an index whose selectivity estimate changed shape).
  plan_cache_.Invalidate();
  return Status::OK();
}

RemoteAttemptFn CacheDbms::MakeAttemptFn() const {
  auto inner = [this](const SelectStmt& stmt) {
    return backend_->ExecuteRemote(stmt);
  };
  if (fault_injector_ != nullptr) return fault_injector_->Wrap(inner);
  // Healthy link: an attempt is just the back-end call, zero latency.
  return [inner](const SelectStmt& stmt) {
    RemoteAttempt attempt;
    Result<RemoteResult> r = inner(stmt);
    attempt.status = r.ok() ? Status::OK() : r.status();
    if (r.ok()) attempt.data = std::move(r).value();
    return attempt;
  };
}

void CacheDbms::SetFaultInjector(FaultInjectorConfig config) {
  fault_injector_ =
      std::make_unique<FaultInjector>(std::move(config), backend_->clock());
  if (remote_policy_ != nullptr) remote_policy_->set_attempt(MakeAttemptFn());
}

void CacheDbms::ClearFaultInjector() {
  fault_injector_.reset();
  if (remote_policy_ != nullptr) remote_policy_->set_attempt(MakeAttemptFn());
}

void CacheDbms::SetRemotePolicy(RemotePolicy policy) {
  // Waiting (attempt latency, retry backoff) runs the simulation forward, so
  // heartbeats and replication deliveries land while the policy waits. In
  // concurrent-batch mode the wait is a no-op instead: the scheduler is not
  // thread-safe and the virtual clock stays frozen for the whole batch, so
  // retries collapse to one instant of virtual time (the documented
  // null-WaitFn behaviour of ResilientRemoteExecutor).
  remote_policy_ = std::make_unique<ResilientRemoteExecutor>(
      policy, MakeAttemptFn(), backend_->clock(), [this](SimTimeMs delta) {
        if (in_concurrent_batch()) return;
        scheduler_->RunUntil(scheduler_->clock()->Now() + delta);
      });
}

void CacheDbms::ClearRemotePolicy() { remote_policy_.reset(); }

void CacheDbms::SetReplicationFaults(ReplicationFaultConfig config) {
  replication_faults_ = config;
  for (auto& agent : agents_) {
    // Per-region seed offset: the regions draw independent fault schedules
    // while one top-level seed still reproduces the whole run.
    ReplicationFaultConfig cfg = config;
    cfg.seed += static_cast<uint64_t>(agent->region()->id());
    agent->SetFaultConfig(cfg);
  }
}

void CacheDbms::ClearReplicationFaults() {
  replication_faults_.reset();
  for (auto& agent : agents_) agent->ClearFaultConfig();
}

Result<RemoteResult> CacheDbms::ExecuteRemote(const SelectStmt& stmt,
                                              ExecStats* stats,
                                              obs::QueryTrace* trace,
                                              Deadline deadline) const {
  // The whole remote stack (breaker state, injector RNG, back-end executor
  // counters) is single-threaded; workers of a concurrent batch take turns.
  // Serial mode skips the lock: it is single-threaded by contract, and the
  // policy's wait pumps the scheduler (replication deliveries take region
  // data locks exclusively), so holding the channel mutex across the pump
  // would order channel-before-region — the reverse of a concurrent worker,
  // which opens its remote branch while holding region locks shared. The
  // modes never overlap, but the lock-order cycle is real enough for tsan.
  std::unique_lock<std::mutex> channel_guard(remote_mutex_, std::defer_lock);
  if (in_concurrent_batch()) channel_guard.lock();
  if (remote_policy_ != nullptr) {
    return remote_policy_->Execute(stmt, stats, trace, deadline);
  }
  if (fault_injector_ != nullptr) {
    // Vanilla channel under faults: one bare attempt, failures surface
    // immediately.
    RemoteAttempt attempt = fault_injector_->Execute(
        stmt,
        [this](const SelectStmt& s) { return backend_->ExecuteRemote(s); });
    if (!attempt.status.ok()) return attempt.status;
    return std::move(attempt.data);
  }
  return backend_->ExecuteRemote(stmt);
}

OptimizerOptions CacheDbms::default_options() const {
  OptimizerOptions opts;
  opts.mode = PlanMode::kCache;
  opts.costs = costs_;
  // Plan against live pipeline health: a quarantined region is priced
  // remote-only instead of betting on a guard that cannot pass.
  opts.region_health = [this](RegionId cid) { return RegionHealthOf(cid); };
  return opts;
}

Result<QueryPlan> CacheDbms::Prepare(const SelectStmt& stmt) const {
  return Prepare(stmt, default_options());
}

Result<QueryPlan> CacheDbms::Prepare(const SelectStmt& stmt,
                                     const OptimizerOptions& opts) const {
  RCC_ASSIGN_OR_RETURN(ResolvedQuery resolved, ResolveQuery(stmt, catalog_));
  return Optimize(std::move(resolved), catalog_, opts);
}

ExecContext CacheDbms::MakeExecContext(ExecStats* stats,
                                       SimTimeMs timeline_floor,
                                       DegradeMode degrade,
                                       obs::QueryTrace* trace) const {
  ExecContext ctx;
  // One pin per query execution: the guard probe, every scan, and the audit
  // epoch of a region all read the same pinned snapshot (until a degrade
  // re-probe refreshes a not-yet-served region). The lambdas share ownership
  // of the pin, so it lives exactly as long as the context.
  auto pin = std::make_shared<SnapshotPin>(epochs_.get());
  ctx.snapshot_pin = pin;
  ctx.table_provider = [this, pin](const ScanTarget& target) -> const Table* {
    if (!target.is_view) return nullptr;  // no base tables on the cache
    std::string lower = ToLower(target.name);
    auto it = view_regions_.find(lower);
    if (it == view_regions_.end()) return nullptr;
    const CurrencyRegion* r = region(it->second);
    if (r == nullptr) return nullptr;
    const MaterializedView* v = pin->Acquire(r)->FindView(lower);
    return v == nullptr ? nullptr : &v->data();
  };
  // Deadline-free binding; ExecutePrepared re-binds this lambda with the
  // statement's deadline when one is armed (the deadline is per-statement,
  // this context builder is shared with deadline-less callers).
  ctx.remote_executor = [this, stats, trace](const SelectStmt& stmt) {
    return ExecuteRemote(stmt, stats, trace);
  };
  ctx.local_heartbeat = [this, pin](RegionId cid) -> std::optional<SimTimeMs> {
    const CurrencyRegion* r = region(cid);
    if (r == nullptr) return std::nullopt;
    return pin->Acquire(r)->certified_heartbeat();
  };
  ctx.region_health = [this, pin](RegionId cid) {
    const CurrencyRegion* r = region(cid);
    return r == nullptr ? RegionHealth::kHealthy : pin->Acquire(r)->health;
  };
  ctx.region_epoch = [this, pin](RegionId cid) -> uint64_t {
    const CurrencyRegion* r = region(cid);
    return r == nullptr ? 0 : pin->Acquire(r)->epoch;
  };
  ctx.refresh_region = [this, pin](RegionId cid) {
    const CurrencyRegion* r = region(cid);
    if (r != nullptr) pin->Refresh(r);
  };
  ctx.note_local_serve = [pin](RegionId cid) { pin->MarkServed(cid); };
  ctx.clock = backend_->clock();
  ctx.stats = stats;
  ctx.timeline_floor_ms = timeline_floor;
  ctx.degrade = degrade;
  ctx.trace = trace;
  ctx.guard_probe_hist = inst_.guard_probe_ms;
  return ctx;
}

Result<CacheQueryOutcome> CacheDbms::ExecutePrepared(const QueryPlan& plan,
                                                     SimTimeMs timeline_floor,
                                                     DegradeMode degrade,
                                                     obs::QueryTrace* trace,
                                                     uint64_t session_tag) {
  PreparedExecOptions opts;
  opts.timeline_floor = timeline_floor;
  opts.degrade = degrade;
  opts.trace = trace;
  opts.session_tag = session_tag;
  return ExecutePrepared(plan, opts);
}

Result<CacheQueryOutcome> CacheDbms::ExecutePrepared(
    const QueryPlan& plan, const PreparedExecOptions& opts) {
  const SimTimeMs timeline_floor = opts.timeline_floor;
  const DegradeMode degrade = opts.degrade;
  obs::QueryTrace* trace = opts.trace;
  CacheQueryOutcome out;
  ExecContext ctx = MakeExecContext(&out.stats, timeline_floor, degrade, trace);
  ctx.params = opts.params;
  ctx.shed_hint = opts.shed_hint;
  if (opts.deadline.armed()) {
    ctx.deadline = opts.deadline;
    // Re-bind the remote channel with the deadline so the retry loop's
    // cancellation points see it (the MakeExecContext binding is shared with
    // deadline-less callers).
    ExecStats* stats = &out.stats;
    Deadline deadline = opts.deadline;
    ctx.remote_executor = [this, stats, trace, deadline](
                              const SelectStmt& stmt) {
      return ExecuteRemote(stmt, stats, trace, deadline);
    };
  }
  if (sink_ != nullptr) {
    ctx.history = sink_;
    ctx.history_query_id = opts.history_query_id != 0
                               ? opts.history_query_id
                               : sink_->BeginQuery(backend_->clock()->Now());
  }
  // Serial mode only: expose the trace to the delivery observer, so
  // replication batches landing while the policy waits show up in the trace.
  // A concurrent batch freezes the virtual clock (no deliveries fire), and
  // one shared pointer would race across workers anyway.
  if (trace != nullptr && !in_concurrent_batch()) active_trace_ = trace;
  // No region locks in either mode: the context's SnapshotPin gives every
  // scan an immutable published snapshot, so a delivery can never mutate a
  // view mid-scan — and a delivery to any region proceeds while this plan
  // runs, merely deferring reclamation of versions the pin still covers.
  Result<ExecutedQuery> executed = ExecutePlan(plan, &ctx);
  if (active_trace_ == trace && trace != nullptr) active_trace_ = nullptr;
  // Release the snapshot pin before answer bookkeeping: a cancelled or
  // failed statement must not hold its pinned epoch (and thereby defer
  // snapshot reclamation) for even the bookkeeping below — the epoch-leak
  // invariant (MinPinnedEpoch == current_epoch once idle) holds the moment
  // the statement stops executing, not when its result object dies. The
  // context's callbacks share ownership, so dropping both here frees the
  // pin deterministically.
  if (!executed.ok()) {
    ctx.table_provider = nullptr;
    ctx.remote_executor = nullptr;
    ctx.local_heartbeat = nullptr;
    ctx.region_health = nullptr;
    ctx.region_epoch = nullptr;
    ctx.refresh_region = nullptr;
    ctx.note_local_serve = nullptr;
    ctx.snapshot_pin.reset();
  }
  // Failed queries still spent retries / tripped the breaker; account for
  // them in the link-wide counters (worker threads accumulate under a lock).
  {
    std::lock_guard<std::mutex> stats_guard(stats_mutex_);
    cumulative_stats_.Accumulate(out.stats);
  }
  RecordQueryMetrics(out.stats, backend_->clock()->Now());
  if (sink_ != nullptr) {
    AnswerObservation ans;
    ans.query_id = ctx.history_query_id;
    ans.session = opts.session_tag;
    ans.at = backend_->clock()->Now();
    ans.ok = executed.ok();
    // Audited under the session's *current* mode, not the mode the plan
    // behaves under: the two only diverge when a stale cached plan is
    // served across a SET DEGRADE change, which is exactly what the
    // conformance oracle must see (DESIGN.md §12).
    ans.degrade_mode = static_cast<int>(opts.audit_degrade.value_or(degrade));
    ans.floor_before = timeline_floor;
    ans.max_seen_heartbeat = out.stats.max_seen_heartbeat;
    ans.degraded = out.stats.degraded_serves > 0;
    ans.degraded_staleness_ms = out.stats.degraded_staleness_ms;
    ans.rows = out.stats.rows_returned;
    for (const ResolvedOperand& op : plan.resolved.operands) {
      ans.operand_tables.push_back(op.table != nullptr ? op.table->name
                                                       : std::string());
    }
    for (const CcTuple& t : plan.resolved.constraint.tuples) {
      ans.tuples.emplace_back(
          t.bound_ms,
          std::vector<InputOperandId>(t.operands.begin(), t.operands.end()));
    }
    if (!executed.ok()) ans.error = executed.status().ToString();
    sink_->OnAnswer(ans);
  }
  if (!executed.ok()) return executed.status();
  out.result = std::move(executed).value();
  out.shape = plan.Shape();
  out.plan_text = plan.DescribeTree();
  out.constraint = plan.resolved.constraint;
  out.executed_at = backend_->clock()->Now();
  out.max_seen_heartbeat = out.stats.max_seen_heartbeat;
  return out;
}

Result<CacheQueryOutcome> CacheDbms::Execute(const SelectStmt& stmt,
                                             SimTimeMs timeline_floor,
                                             DegradeMode degrade,
                                             obs::QueryTrace* trace,
                                             uint64_t session_tag) {
  RCC_ASSIGN_OR_RETURN(QueryPlan plan, Prepare(stmt));
  return ExecutePrepared(plan, timeline_floor, degrade, trace, session_tag);
}

void CacheDbms::SetMetricsRegistry(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    inst_ = Instruments();
    plan_cache_.SetInstruments(nullptr, nullptr, nullptr, nullptr);
    return;
  }
  inst_.queries = registry->counter("rcc.cache.queries");
  inst_.switch_local = registry->counter("rcc.switch.local");
  inst_.switch_remote = registry->counter("rcc.switch.remote");
  inst_.switch_remote_attempted =
      registry->counter("rcc.switch.remote_attempted");
  inst_.remote_retries = registry->counter("rcc.remote.retries");
  inst_.remote_timeouts = registry->counter("rcc.remote.timeouts");
  inst_.breaker_opens = registry->counter("rcc.remote.breaker_opens");
  inst_.degraded_serves = registry->counter("rcc.degrade.serves");
  inst_.shed_serves = registry->counter("rcc.degrade.shed_serves");
  inst_.deadline_timeouts = registry->counter("rcc.cache.deadline_timeouts");
  inst_.replication_deliveries =
      registry->counter("rcc.replication.deliveries");
  inst_.replication_quarantines =
      registry->counter("rcc.replication.quarantines");
  inst_.replication_resyncs = registry->counter("rcc.replication.resyncs");
  // Per-region health gauges exist from installation on (value = the
  // RegionHealth enum), so a dump shows healthy regions explicitly instead
  // of omitting them.
  for (const auto& [cid, region] : regions_) {
    registry
        ->gauge(StrPrintf("rcc.replication.region_health.%d",
                          static_cast<int>(cid)))
        ->Set(static_cast<double>(static_cast<int>(region->health())));
  }
  inst_.guard_probe_ms = registry->histogram("rcc.guard.probe_ms");
  inst_.query_run_ms = registry->histogram("rcc.cache.query_run_ms");
  inst_.served_staleness_ms =
      registry->histogram("rcc.cache.served_staleness_ms");
  plan_cache_.SetInstruments(
      registry->counter("rcc.plancache.hits"),
      registry->counter("rcc.plancache.misses"),
      registry->counter("rcc.plancache.invalidations"),
      registry->histogram("rcc.plancache.lookup_ms"));
}

void CacheDbms::RecordQueryMetrics(const ExecStats& stats,
                                   SimTimeMs now) const {
  if (inst_.queries == nullptr) return;
  inst_.queries->Add(1);
  inst_.switch_local->Add(stats.switch_local);
  inst_.switch_remote->Add(stats.switch_remote);
  inst_.switch_remote_attempted->Add(stats.switch_remote_attempted);
  inst_.remote_retries->Add(stats.remote_retries);
  inst_.remote_timeouts->Add(stats.remote_timeouts);
  inst_.breaker_opens->Add(stats.breaker_opens);
  inst_.degraded_serves->Add(stats.degraded_serves);
  inst_.shed_serves->Add(stats.shed_serves);
  inst_.deadline_timeouts->Add(stats.deadline_timeouts);
  inst_.query_run_ms->Observe(stats.run_ms);
  // Staleness of what the query served: virtual now minus the highest source
  // snapshot it read. Remote-served queries land in the 0 bucket.
  if (stats.max_seen_heartbeat >= 0) {
    inst_.served_staleness_ms->Observe(
        static_cast<double>(now - stats.max_seen_heartbeat));
  }
}

void CacheDbms::OnDelivery(RegionId region, SimTimeMs at, int64_t ops,
                           std::optional<SimTimeMs> heartbeat) {
  if (inst_.replication_deliveries != nullptr) {
    inst_.replication_deliveries->Add(1);
  }
  // Deliveries run on the scheduler, which in serial mode is driven from the
  // executing query's thread (policy waits) — so the pointer read is safe.
  if (active_trace_ != nullptr) {
    std::string hb = heartbeat.has_value() ? FormatSimTime(*heartbeat)
                                           : std::string("none");
    active_trace_->Record(
        obs::TraceEventKind::kReplicationDelivery, at,
        StrPrintf("region=%d ops=%lld heartbeat=%s", static_cast<int>(region),
                  static_cast<long long>(ops), hb.c_str()),
        region);
  }
}

CurrencyRegion* CacheDbms::region(RegionId cid) {
  auto it = regions_.find(cid);
  return it == regions_.end() ? nullptr : it->second.get();
}

const CurrencyRegion* CacheDbms::region(RegionId cid) const {
  auto it = regions_.find(cid);
  return it == regions_.end() ? nullptr : it->second.get();
}

std::shared_ptr<const MaterializedView> CacheDbms::view(
    std::string_view name) const {
  std::string lower = ToLower(name);
  auto it = view_regions_.find(lower);
  if (it == view_regions_.end()) return nullptr;
  const CurrencyRegion* r = region(it->second);
  return r == nullptr ? nullptr : r->view(lower);
}

std::optional<SimTimeMs> CacheDbms::LocalHeartbeat(RegionId cid) const {
  const CurrencyRegion* r = region(cid);
  if (r == nullptr) return std::nullopt;
  // The *certified* heartbeat: nullopt while the region is quarantined or
  // resyncing, so guards refuse instead of certifying freshness off a
  // heartbeat the replication pipeline withdrew.
  return r->certified_heartbeat();
}

RegionHealth CacheDbms::RegionHealthOf(RegionId cid) const {
  const CurrencyRegion* r = region(cid);
  return r == nullptr ? RegionHealth::kHealthy : r->health();
}

void CacheDbms::OnHealthChange(RegionId region, RegionHealth from,
                               RegionHealth to, SimTimeMs at) {
  // The optimizer prices quarantined regions remote-only
  // (OptimizerOptions::region_health), so a health transition can flip the
  // plan choice: drop cached plans. Guards still protect any in-flight
  // executions of the old plans — invalidation is about plan *quality*, the
  // refusal ladder is about correctness.
  plan_cache_.Invalidate();
  if (metrics_ != nullptr) {
    metrics_
        ->gauge(StrPrintf("rcc.replication.region_health.%d",
                          static_cast<int>(region)))
        ->Set(static_cast<double>(static_cast<int>(to)));
    if (to == RegionHealth::kQuarantined &&
        inst_.replication_quarantines != nullptr) {
      inst_.replication_quarantines->Add(1);
    }
    if (from == RegionHealth::kResyncing && to == RegionHealth::kHealthy &&
        inst_.replication_resyncs != nullptr) {
      inst_.replication_resyncs->Add(1);
    }
  }
  // Transitions run on the scheduler thread, same as deliveries; see
  // OnDelivery for why the serial-mode trace pointer is safe to read here.
  if (active_trace_ != nullptr) {
    active_trace_->Record(
        obs::TraceEventKind::kRegionHealth, at,
        StrPrintf("region=%d from=%s to=%s", static_cast<int>(region),
                  std::string(RegionHealthName(from)).c_str(),
                  std::string(RegionHealthName(to)).c_str()),
        region);
  }
  if (sink_ != nullptr) sink_->OnHealth(region, from, to, at);
}

void CacheDbms::SetHistorySink(HistorySink* sink) {
  sink_ = sink;
  if (sink == nullptr) return;
  // Regions defined before the sink was installed: report their current
  // state as the initial install, so the oracle's per-region timeline starts
  // from known ground instead of an unexplained first delivery.
  for (const auto& [cid, region] : regions_) {
    std::shared_ptr<const RegionSnapshot> snap = region->Snapshot();
    InstallObservation obs;
    obs.kind = InstallObservation::Kind::kInitial;
    obs.region = cid;
    obs.at = backend_->clock()->Now();
    obs.as_of = snap->as_of;
    obs.heartbeat = snap->heartbeat;
    sink_->OnInstall(obs);
  }
}

}  // namespace rcc
