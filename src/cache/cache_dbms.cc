#include "cache/cache_dbms.h"

#include "common/strings.h"
#include "semantics/resolver.h"

namespace rcc {

Status CacheDbms::CreateShadow() {
  for (const std::string& name : backend_->catalog().TableNames()) {
    const TableDef* def = backend_->catalog().FindTable(name);
    RCC_RETURN_NOT_OK(catalog_.AddTable(*def));
    catalog_.SetStats(name, backend_->catalog().GetStats(name));
  }
  return Status::OK();
}

Status CacheDbms::DefineRegion(const RegionDef& def) {
  RCC_RETURN_NOT_OK(catalog_.AddRegion(def));
  auto region = std::make_unique<CurrencyRegion>(def);
  // The initial population reflects the back-end as of "now".
  region->set_local_heartbeat(backend_->clock()->Now());
  region->set_as_of(backend_->oracle().last_committed());
  region->set_applied_log_pos(backend_->log().size());
  auto agent = std::make_unique<DistributionAgent>(
      region.get(), &backend_->log(), &backend_->heartbeat(), scheduler_);
  agent->Start(backend_->clock()->Now() + def.update_interval);
  backend_->RegisterRegionHeartbeat(def, scheduler_);
  regions_[def.cid] = std::move(region);
  agents_.push_back(std::move(agent));
  return Status::OK();
}

Status CacheDbms::CreateView(const ViewDef& def) {
  RCC_RETURN_NOT_OK(catalog_.AddView(def));
  const TableDef* source = catalog_.FindTable(def.source_table);
  RCC_ASSIGN_OR_RETURN(auto view, MaterializedView::Create(def, *source));
  const Table* master = backend_->table(def.source_table);
  if (master == nullptr) {
    return Status::NotFound("master table " + def.source_table + " missing");
  }
  view->PopulateFrom(*master);
  // Secondary indexes declared on the view.
  for (const IndexDef& idx : def.secondary_indexes) {
    std::vector<size_t> cols =
        Catalog::ResolveColumns(view->schema(), idx.columns);
    RCC_RETURN_NOT_OK(
        view->mutable_data().CreateSecondaryIndex(idx.name, std::move(cols)));
  }
  auto rit = regions_.find(def.region);
  if (rit == regions_.end()) {
    return Status::NotFound("region " + std::to_string(def.region) +
                            " not defined");
  }
  rit->second->AddView(view.get());
  views_[ToLower(def.name)] = std::move(view);
  return Status::OK();
}

Status CacheDbms::CreateLogicalView(const std::string& name,
                                    const std::string& sql) {
  return catalog_.AddLogicalView(name, sql);
}

OptimizerOptions CacheDbms::default_options() const {
  OptimizerOptions opts;
  opts.mode = PlanMode::kCache;
  opts.costs = costs_;
  return opts;
}

Result<QueryPlan> CacheDbms::Prepare(const SelectStmt& stmt) const {
  return Prepare(stmt, default_options());
}

Result<QueryPlan> CacheDbms::Prepare(const SelectStmt& stmt,
                                     const OptimizerOptions& opts) const {
  RCC_ASSIGN_OR_RETURN(ResolvedQuery resolved, ResolveQuery(stmt, catalog_));
  return Optimize(std::move(resolved), catalog_, opts);
}

ExecContext CacheDbms::MakeExecContext(ExecStats* stats,
                                       SimTimeMs timeline_floor) const {
  ExecContext ctx;
  ctx.table_provider = [this](const ScanTarget& target) -> const Table* {
    if (!target.is_view) return nullptr;  // no base tables on the cache
    auto it = views_.find(ToLower(target.name));
    return it == views_.end() ? nullptr : &it->second->data();
  };
  ctx.remote_executor = [this](const SelectStmt& stmt) {
    return backend_->ExecuteRemote(stmt);
  };
  ctx.local_heartbeat = [this](RegionId cid) { return LocalHeartbeat(cid); };
  ctx.clock = backend_->clock();
  ctx.stats = stats;
  ctx.timeline_floor_ms = timeline_floor;
  return ctx;
}

Result<CacheQueryOutcome> CacheDbms::ExecutePrepared(
    const QueryPlan& plan, SimTimeMs timeline_floor) {
  CacheQueryOutcome out;
  ExecContext ctx = MakeExecContext(&out.stats, timeline_floor);
  RCC_ASSIGN_OR_RETURN(out.result, ExecutePlan(plan, &ctx));
  out.shape = plan.Shape();
  out.plan_text = plan.DescribeTree();
  out.constraint = plan.resolved.constraint;
  out.executed_at = backend_->clock()->Now();
  out.max_seen_heartbeat = out.stats.max_seen_heartbeat;
  return out;
}

Result<CacheQueryOutcome> CacheDbms::Execute(const SelectStmt& stmt,
                                             SimTimeMs timeline_floor) {
  RCC_ASSIGN_OR_RETURN(QueryPlan plan, Prepare(stmt));
  return ExecutePrepared(plan, timeline_floor);
}

CurrencyRegion* CacheDbms::region(RegionId cid) {
  auto it = regions_.find(cid);
  return it == regions_.end() ? nullptr : it->second.get();
}

const CurrencyRegion* CacheDbms::region(RegionId cid) const {
  auto it = regions_.find(cid);
  return it == regions_.end() ? nullptr : it->second.get();
}

MaterializedView* CacheDbms::view(std::string_view name) {
  auto it = views_.find(ToLower(name));
  return it == views_.end() ? nullptr : it->second.get();
}

SimTimeMs CacheDbms::LocalHeartbeat(RegionId cid) const {
  const CurrencyRegion* r = region(cid);
  return r == nullptr ? 0 : r->local_heartbeat();
}

}  // namespace rcc
