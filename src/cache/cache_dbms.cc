#include "cache/cache_dbms.h"

#include <shared_mutex>

#include "common/strings.h"
#include "semantics/resolver.h"

namespace rcc {

Status CacheDbms::CreateShadow() {
  for (const std::string& name : backend_->catalog().TableNames()) {
    const TableDef* def = backend_->catalog().FindTable(name);
    RCC_RETURN_NOT_OK(catalog_.AddTable(*def));
    catalog_.SetStats(name, backend_->catalog().GetStats(name));
  }
  return Status::OK();
}

Status CacheDbms::DefineRegion(const RegionDef& def) {
  RCC_RETURN_NOT_OK(catalog_.AddRegion(def));
  auto region = std::make_unique<CurrencyRegion>(def);
  // The initial population reflects the back-end as of "now".
  region->set_local_heartbeat(backend_->clock()->Now());
  region->set_as_of(backend_->oracle().last_committed());
  region->set_applied_log_pos(backend_->log().size());
  auto agent = std::make_unique<DistributionAgent>(
      region.get(), &backend_->log(), &backend_->heartbeat(), scheduler_);
  agent->Start(backend_->clock()->Now() + def.update_interval);
  backend_->RegisterRegionHeartbeat(def, scheduler_);
  regions_[def.cid] = std::move(region);
  agents_.push_back(std::move(agent));
  return Status::OK();
}

Status CacheDbms::CreateView(const ViewDef& def) {
  RCC_RETURN_NOT_OK(catalog_.AddView(def));
  const TableDef* source = catalog_.FindTable(def.source_table);
  RCC_ASSIGN_OR_RETURN(auto view, MaterializedView::Create(def, *source));
  const Table* master = backend_->table(def.source_table);
  if (master == nullptr) {
    return Status::NotFound("master table " + def.source_table + " missing");
  }
  view->PopulateFrom(*master);
  // Secondary indexes declared on the view.
  for (const IndexDef& idx : def.secondary_indexes) {
    std::vector<size_t> cols =
        Catalog::ResolveColumns(view->schema(), idx.columns);
    RCC_RETURN_NOT_OK(
        view->mutable_data().CreateSecondaryIndex(idx.name, std::move(cols)));
  }
  auto rit = regions_.find(def.region);
  if (rit == regions_.end()) {
    return Status::NotFound("region " + std::to_string(def.region) +
                            " not defined");
  }
  rit->second->AddView(view.get());
  views_[ToLower(def.name)] = std::move(view);
  return Status::OK();
}

Status CacheDbms::CreateLogicalView(const std::string& name,
                                    const std::string& sql) {
  return catalog_.AddLogicalView(name, sql);
}

RemoteAttemptFn CacheDbms::MakeAttemptFn() const {
  auto inner = [this](const SelectStmt& stmt) {
    return backend_->ExecuteRemote(stmt);
  };
  if (fault_injector_ != nullptr) return fault_injector_->Wrap(inner);
  // Healthy link: an attempt is just the back-end call, zero latency.
  return [inner](const SelectStmt& stmt) {
    RemoteAttempt attempt;
    Result<RemoteResult> r = inner(stmt);
    attempt.status = r.ok() ? Status::OK() : r.status();
    if (r.ok()) attempt.data = std::move(r).value();
    return attempt;
  };
}

void CacheDbms::SetFaultInjector(FaultInjectorConfig config) {
  fault_injector_ =
      std::make_unique<FaultInjector>(std::move(config), backend_->clock());
  if (remote_policy_ != nullptr) remote_policy_->set_attempt(MakeAttemptFn());
}

void CacheDbms::ClearFaultInjector() {
  fault_injector_.reset();
  if (remote_policy_ != nullptr) remote_policy_->set_attempt(MakeAttemptFn());
}

void CacheDbms::SetRemotePolicy(RemotePolicy policy) {
  // Waiting (attempt latency, retry backoff) runs the simulation forward, so
  // heartbeats and replication deliveries land while the policy waits. In
  // concurrent-batch mode the wait is a no-op instead: the scheduler is not
  // thread-safe and the virtual clock stays frozen for the whole batch, so
  // retries collapse to one instant of virtual time (the documented
  // null-WaitFn behaviour of ResilientRemoteExecutor).
  remote_policy_ = std::make_unique<ResilientRemoteExecutor>(
      policy, MakeAttemptFn(), backend_->clock(), [this](SimTimeMs delta) {
        if (in_concurrent_batch()) return;
        scheduler_->RunUntil(scheduler_->clock()->Now() + delta);
      });
}

void CacheDbms::ClearRemotePolicy() { remote_policy_.reset(); }

Result<RemoteResult> CacheDbms::ExecuteRemote(const SelectStmt& stmt,
                                              ExecStats* stats) const {
  // The whole remote stack (breaker state, injector RNG, back-end executor
  // counters) is single-threaded; workers of a concurrent batch take turns.
  std::lock_guard<std::mutex> channel_guard(remote_mutex_);
  if (remote_policy_ != nullptr) return remote_policy_->Execute(stmt, stats);
  if (fault_injector_ != nullptr) {
    // Vanilla channel under faults: one bare attempt, failures surface
    // immediately.
    RemoteAttempt attempt = fault_injector_->Execute(
        stmt,
        [this](const SelectStmt& s) { return backend_->ExecuteRemote(s); });
    if (!attempt.status.ok()) return attempt.status;
    return std::move(attempt.data);
  }
  return backend_->ExecuteRemote(stmt);
}

OptimizerOptions CacheDbms::default_options() const {
  OptimizerOptions opts;
  opts.mode = PlanMode::kCache;
  opts.costs = costs_;
  return opts;
}

Result<QueryPlan> CacheDbms::Prepare(const SelectStmt& stmt) const {
  return Prepare(stmt, default_options());
}

Result<QueryPlan> CacheDbms::Prepare(const SelectStmt& stmt,
                                     const OptimizerOptions& opts) const {
  RCC_ASSIGN_OR_RETURN(ResolvedQuery resolved, ResolveQuery(stmt, catalog_));
  return Optimize(std::move(resolved), catalog_, opts);
}

ExecContext CacheDbms::MakeExecContext(ExecStats* stats,
                                       SimTimeMs timeline_floor,
                                       DegradeMode degrade) const {
  ExecContext ctx;
  ctx.table_provider = [this](const ScanTarget& target) -> const Table* {
    if (!target.is_view) return nullptr;  // no base tables on the cache
    auto it = views_.find(ToLower(target.name));
    return it == views_.end() ? nullptr : &it->second->data();
  };
  ctx.remote_executor = [this, stats](const SelectStmt& stmt) {
    return ExecuteRemote(stmt, stats);
  };
  ctx.local_heartbeat = [this](RegionId cid) { return LocalHeartbeat(cid); };
  ctx.clock = backend_->clock();
  ctx.stats = stats;
  ctx.timeline_floor_ms = timeline_floor;
  ctx.degrade = degrade;
  return ctx;
}

Result<CacheQueryOutcome> CacheDbms::ExecutePrepared(const QueryPlan& plan,
                                                     SimTimeMs timeline_floor,
                                                     DegradeMode degrade) {
  CacheQueryOutcome out;
  ExecContext ctx = MakeExecContext(&out.stats, timeline_floor, degrade);
  // Concurrent batch: hold every region's data lock shared while the plan
  // runs, so a replication delivery (exclusive) can never mutate a view
  // mid-scan. Regions are locked in ascending cid order (map order), the
  // engine-wide lock hierarchy. Serial mode skips this: the single thread
  // may re-enter the scheduler (policy waits), and a Deliver fired from
  // there taking the exclusive lock over our shared one would self-deadlock.
  std::vector<std::shared_lock<std::shared_mutex>> region_guards;
  if (in_concurrent_batch()) {
    region_guards.reserve(regions_.size());
    for (const auto& [cid, region] : regions_) {
      region_guards.emplace_back(region->data_lock());
    }
  }
  Result<ExecutedQuery> executed = ExecutePlan(plan, &ctx);
  // Failed queries still spent retries / tripped the breaker; account for
  // them in the link-wide counters (worker threads accumulate under a lock).
  {
    std::lock_guard<std::mutex> stats_guard(stats_mutex_);
    cumulative_stats_.Accumulate(out.stats);
  }
  if (!executed.ok()) return executed.status();
  out.result = std::move(executed).value();
  out.shape = plan.Shape();
  out.plan_text = plan.DescribeTree();
  out.constraint = plan.resolved.constraint;
  out.executed_at = backend_->clock()->Now();
  out.max_seen_heartbeat = out.stats.max_seen_heartbeat;
  return out;
}

Result<CacheQueryOutcome> CacheDbms::Execute(const SelectStmt& stmt,
                                             SimTimeMs timeline_floor,
                                             DegradeMode degrade) {
  RCC_ASSIGN_OR_RETURN(QueryPlan plan, Prepare(stmt));
  return ExecutePrepared(plan, timeline_floor, degrade);
}

CurrencyRegion* CacheDbms::region(RegionId cid) {
  auto it = regions_.find(cid);
  return it == regions_.end() ? nullptr : it->second.get();
}

const CurrencyRegion* CacheDbms::region(RegionId cid) const {
  auto it = regions_.find(cid);
  return it == regions_.end() ? nullptr : it->second.get();
}

MaterializedView* CacheDbms::view(std::string_view name) {
  auto it = views_.find(ToLower(name));
  return it == views_.end() ? nullptr : it->second.get();
}

std::optional<SimTimeMs> CacheDbms::LocalHeartbeat(RegionId cid) const {
  const CurrencyRegion* r = region(cid);
  if (r == nullptr) return std::nullopt;
  return r->local_heartbeat();
}

}  // namespace rcc
