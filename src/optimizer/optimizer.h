#ifndef RCC_OPTIMIZER_OPTIMIZER_H_
#define RCC_OPTIMIZER_OPTIMIZER_H_

#include <functional>

#include "catalog/catalog.h"
#include "optimizer/cost_model.h"
#include "plan/physical.h"
#include "replication/health.h"
#include "semantics/resolver.h"

namespace rcc {

/// Where a plan will run. The cache DBMS considers local materialized views
/// (guarded by currency checks) and remote queries; the back-end only its
/// own base tables and indexes. The cache plans "remote" subtrees by
/// simulating back-end optimization against its shadow statistics, exactly
/// like MTCache's shadow database lets SQL Server cost remote subqueries.
enum class PlanMode { kCache, kBackend };

/// Optimizer configuration. The two `enable_*` switches exist for the
/// ablation benchmarks: disabling view matching forces all-remote plans;
/// disabling currency guards uses matched views unguarded (unsound — it can
/// violate currency bounds — which the ablation demonstrates).
struct OptimizerOptions {
  PlanMode mode = PlanMode::kCache;
  CostParams costs;
  bool enable_view_matching = true;
  bool enable_currency_guards = true;
  /// When false, the cache may not forward work to the back-end — the
  /// paper's *traditional replicated database* scenario (§1): queries must
  /// run against local replicas, and a query whose C&C constraint cannot be
  /// met by any replica fails with ConstraintViolation at compile time
  /// (bound below the region delay) or Unavailable at run time (guard
  /// failed and there is nowhere to fall back to).
  bool allow_remote = true;
  /// Upper bound on enumerated placements (local/remote assignments).
  int max_placements = 512;
  /// Live replication-pipeline health probe for a region; null when the
  /// engine doesn't track health. A quarantined/resyncing region has no
  /// certified heartbeat, so its guard refuses every probe: the optimizer
  /// prices such a local branch at p = 0 (SwitchUnionCost then charges the
  /// remote branch at full weight) and, when remote fallback is available,
  /// drops the local placement outright instead of betting on it.
  std::function<RegionHealth(RegionId)> region_health;
};

/// Optimizes a resolved query. Consistency constraints are enforced at
/// compile time here — placements whose delivered consistency property
/// violates the required property are pruned (paper §3.2.2) — while currency
/// constraints become run-time guards in the emitted SwitchUnion operators
/// (§3.2.3). Fails with ConstraintViolation only if no valid plan exists
/// (cannot happen in practice: the all-remote plan always satisfies any
/// constraint).
Result<QueryPlan> Optimize(ResolvedQuery resolved, const Catalog& catalog,
                           const OptimizerOptions& options);

/// Cost/cardinality estimate of running `stmt` at the back-end; used to cost
/// remote subqueries and exposed for the cost-model tests.
struct RemoteEstimate {
  double cost = 0;
  double rows = 0;
};
Result<RemoteEstimate> EstimateBackendQuery(const SelectStmt& stmt,
                                            const Catalog& catalog,
                                            const CostParams& costs);

}  // namespace rcc

#endif  // RCC_OPTIMIZER_OPTIMIZER_H_
