#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "common/logging.h"
#include "common/strings.h"
#include "optimizer/view_matching.h"

namespace rcc {

namespace {

constexpr double kDefaultSel = 0.3;

bool IsAggregateFunc(const std::string& f) {
  return f == "count" || f == "sum" || f == "avg" || f == "min" || f == "max";
}

bool ContainsAggregate(const Expr* e) {
  if (e == nullptr) return false;
  if (e->kind == ExprKind::kFuncCall && IsAggregateFunc(e->func)) return true;
  if (ContainsAggregate(e->left.get()) || ContainsAggregate(e->right.get())) {
    return true;
  }
  for (const auto& a : e->args) {
    if (ContainsAggregate(a.get())) return true;
  }
  return false;
}

bool ContainsSubquery(const Expr* e) {
  if (e == nullptr) return false;
  if (e->subquery != nullptr) return true;
  if (ContainsSubquery(e->left.get()) || ContainsSubquery(e->right.get())) {
    return true;
  }
  for (const auto& a : e->args) {
    if (ContainsSubquery(a.get())) return true;
  }
  return false;
}

/// Operand ids (of `aliases`) referenced by qualified column refs in `e`.
/// Sets `has_bare` when an unqualified reference appears; refs whose
/// qualifier is not in `aliases` (correlated to an outer block) are ignored.
void ReferencedOps(const Expr* e, const AliasMap& aliases,
                   std::set<InputOperandId>* ops, bool* has_bare) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kColumnRef) {
    if (e->table.empty()) {
      *has_bare = true;
    } else {
      auto it = aliases.find(ToLower(e->table));
      if (it != aliases.end()) ops->insert(it->second);
    }
    return;
  }
  ReferencedOps(e->left.get(), aliases, ops, has_bare);
  ReferencedOps(e->right.get(), aliases, ops, has_bare);
  for (const auto& a : e->args) ReferencedOps(a.get(), aliases, ops, has_bare);
}

/// One access decision per input operand: remote, or through a local view.
struct Placement {
  const ViewDef* view = nullptr;
  bool local() const { return view != nullptr; }
};
using PlacementVec = std::vector<Placement>;

/// Pre-digested information about one SFW block.
struct BlockCtx {
  const SelectStmt* stmt = nullptr;
  int block_id = 0;
  AliasMap aliases;  // base aliases -> operand id, derived -> pseudo id
  std::vector<InputOperandId> base_ops;           // in FROM order
  std::map<InputOperandId, const TableRef*> refs;  // base ops only
  std::vector<const TableRef*> derived;            // derived tables, FROM order
  std::map<std::string, InputOperandId> derived_pseudo;  // alias -> pseudo id

  std::map<InputOperandId, std::vector<const Expr*>> single_conjuncts;
  std::vector<const Expr*> subquery_conjuncts;
  std::vector<const Expr*> multi_conjuncts;  // joins + everything else
  std::map<InputOperandId, std::set<std::string>> needed;  // lower-case cols
  std::map<InputOperandId, std::map<std::string, RangeBound>> bounds;
};

/// A planned input of the block-level join: its operator tree, coverage, and
/// estimates. `rebuild` re-creates the unit with an extra parameterized
/// equality (for index nested-loop joins); null when not seekable.
struct UnitPlan {
  std::unique_ptr<PhysicalOp> op;
  std::set<InputOperandId> ops;
  double rows = 0;
  double cost = 0;
  /// Operand usable as a parameterized-seek target (single-operand local
  /// units only).
  InputOperandId seek_op = kInvalidOperand;
  /// Re-creates the unit with an extra parameterized equality
  /// `column = outer_ref` pushed into the access path — the inner side of an
  /// index nested-loop join. `rows`/`cost` of the result are per probe.
  std::function<Result<UnitPlan>(const std::string& column,
                                 const Expr& outer_ref)>
      rebuild;
};

struct JoinDecision {
  enum class Method { kHash, kNljSeek, kNljScan };
  size_t unit_index = 0;
  Method method = Method::kHash;
  std::vector<const Expr*> eq_conjuncts;    // usable as hash keys / seek
  std::vector<const Expr*> residual;        // applied at this join
  std::string seek_column;                  // for kNljSeek (inner column)
  const Expr* seek_outer_expr = nullptr;    // outer side of the seek equality
};

class Planner {
 public:
  Planner(const Catalog& catalog, const OptimizerOptions& opts)
      : catalog_(catalog), opts_(opts) {}

  Result<QueryPlan> Run(ResolvedQuery resolved);

 private:
  // -- preparation ----------------------------------------------------------
  Status PrepareBlocks(const SelectStmt* stmt);
  Status PrepareBlock(const SelectStmt* stmt);

  // -- placement enumeration -------------------------------------------------
  Result<std::vector<PlacementVec>> EnumeratePlacements();
  bool PlacementValid(const PlacementVec& placement) const;

  // -- block planning ---------------------------------------------------------
  Result<std::unique_ptr<PhysicalOp>> PlanBlock(const SelectStmt& stmt,
                                                const PlacementVec& placement,
                                                InputOperandId pseudo_id);
  Result<UnitPlan> BuildLocalUnit(const BlockCtx& ctx,
                                  const std::vector<InputOperandId>& ops,
                                  const PlacementVec& placement,
                                  RegionId region, SimTimeMs bound,
                                  const std::string& param_column,
                                  const Expr* param_outer);
  Result<UnitPlan> BuildRemoteUnit(const BlockCtx& ctx,
                                   const std::vector<InputOperandId>& ops);
  Result<UnitPlan> BuildBackendUnit(const BlockCtx& ctx, InputOperandId op);
  Result<UnitPlan> BuildBackendUnitParam(const BlockCtx& ctx,
                                         InputOperandId op,
                                         const std::string& column,
                                         const Expr* outer_ref);
  Result<std::unique_ptr<PhysicalOp>> BuildScan(
      const BlockCtx& ctx, InputOperandId op, const ScanTarget& target,
      const Schema& storage_schema,
      const std::vector<std::string>& clustered_key,
      const std::vector<IndexDef>& indexes, const TableStats& stats,
      double stats_scale, const std::string& param_column,
      const Expr* param_outer);
  Result<std::unique_ptr<PhysicalOp>> JoinUnits(
      const BlockCtx& ctx, std::vector<UnitPlan> units,
      const std::vector<const Expr*>& conjuncts);

  // -- helpers ---------------------------------------------------------------
  const ResolvedOperand& OperandInfo(InputOperandId op) const {
    return resolved_.operands[op];
  }
  const TableStats& StatsOf(InputOperandId op) const {
    return catalog_.GetStats(OperandInfo(op).table->name);
  }
  double DistinctOf(InputOperandId op, const std::string& column,
                    double fallback) const;
  double UnitRowsEstimate(const BlockCtx& ctx, InputOperandId op) const;
  std::unique_ptr<Expr> ConjunctionOf(
      const std::vector<const Expr*>& conjuncts) const;
  std::unique_ptr<SelectStmt> SynthesizeRemoteStmt(
      const BlockCtx& ctx, const std::vector<InputOperandId>& ops,
      const RowLayout& layout, const std::vector<const Expr*>& extra) const;
  RowLayout UnitLayout(const BlockCtx& ctx,
                       const std::vector<InputOperandId>& ops) const;
  Result<std::unique_ptr<PhysicalOp>> FinishBlock(
      const BlockCtx& ctx, std::unique_ptr<PhysicalOp> input,
      const PlacementVec& placement, InputOperandId pseudo_id);
  Result<RemoteEstimate> EstimateRemote(const SelectStmt& stmt) const;

  const Catalog& catalog_;
  OptimizerOptions opts_;
  ResolvedQuery resolved_;
  std::map<const SelectStmt*, BlockCtx> blocks_;
  std::vector<int> op_block_;  // operand id -> block id
  RegionId next_dynamic_ = kDynamicRegionBase;
  uint32_t next_pseudo_ = 0;
  std::map<const SelectStmt*, SubPlan> subplans_;
};

// ---------------------------------------------------------------------------
// Preparation
// ---------------------------------------------------------------------------

Status Planner::PrepareBlocks(const SelectStmt* stmt) {
  RCC_RETURN_NOT_OK(PrepareBlock(stmt));
  const BlockCtx& ctx = blocks_.at(stmt);
  // Recurse into derived tables and expression subqueries.
  for (const TableRef* ref : ctx.derived) {
    RCC_RETURN_NOT_OK(PrepareBlocks(ref->subquery.get()));
  }
  std::function<Status(const Expr*)> walk = [&](const Expr* e) -> Status {
    if (e == nullptr) return Status::OK();
    if (e->subquery) RCC_RETURN_NOT_OK(PrepareBlocks(e->subquery.get()));
    RCC_RETURN_NOT_OK(walk(e->left.get()));
    RCC_RETURN_NOT_OK(walk(e->right.get()));
    for (const auto& a : e->args) RCC_RETURN_NOT_OK(walk(a.get()));
    return Status::OK();
  };
  RCC_RETURN_NOT_OK(walk(stmt->where.get()));
  for (const auto& item : stmt->items) {
    RCC_RETURN_NOT_OK(walk(item.expr.get()));
  }
  return Status::OK();
}

Status Planner::PrepareBlock(const SelectStmt* stmt) {
  BlockCtx ctx;
  ctx.stmt = stmt;
  ctx.block_id = static_cast<int>(blocks_.size());

  for (const TableRef& ref : stmt->from) {
    if (ref.is_subquery()) {
      InputOperandId pseudo = next_pseudo_++;
      ctx.aliases[ToLower(ref.alias)] = pseudo;
      ctx.derived.push_back(&ref);
      ctx.derived_pseudo[ToLower(ref.alias)] = pseudo;
    } else {
      if (ref.resolved_operand == kInvalidOperand) {
        return Status::Internal("unresolved table ref " + ref.table);
      }
      ctx.aliases[ToLower(ref.alias)] = ref.resolved_operand;
      ctx.base_ops.push_back(ref.resolved_operand);
      ctx.refs[ref.resolved_operand] = &ref;
      if (ref.resolved_operand < op_block_.size()) {
        op_block_[ref.resolved_operand] = ctx.block_id;
      }
    }
  }

  // Classify WHERE conjuncts.
  for (const Expr* conj : SplitConjuncts(stmt->where.get())) {
    if (ContainsSubquery(conj)) {
      ctx.subquery_conjuncts.push_back(conj);
      continue;
    }
    std::set<InputOperandId> ops;
    bool has_bare = false;
    ReferencedOps(conj, ctx.aliases, &ops, &has_bare);
    if (!has_bare && ops.size() == 1 &&
        *ops.begin() < resolved_.operands.size()) {
      // Single *base* operand: pushable into its access path. Conjuncts on
      // derived-table aliases route through the join/filter machinery.
      ctx.single_conjuncts[*ops.begin()].push_back(conj);
    } else {
      ctx.multi_conjuncts.push_back(conj);
    }
  }

  // Needed columns per base operand.
  for (InputOperandId op : ctx.base_ops) {
    const TableDef* table = resolved_.operands[op].table;
    std::set<std::string> cols;
    if (stmt->select_star) {
      for (const Column& c : table->schema.columns()) {
        cols.insert(ToLower(c.name));
      }
    } else {
      auto collect = [&](const Expr* e) {
        CollectColumnsOf(e, op, ctx.aliases, &cols);
      };
      for (const auto& item : stmt->items) collect(item.expr.get());
      collect(stmt->where.get());
      for (const auto& g : stmt->group_by) collect(g.get());
      collect(stmt->having.get());
      for (const auto& o : stmt->order_by) collect(o.expr.get());
      // Keep only columns that exist in this operand's schema (bare names
      // were collected conservatively), and always include the clustered key
      // (needed for stable view maintenance semantics and cheap seeks).
      std::set<std::string> filtered;
      for (const std::string& c : cols) {
        if (table->schema.FindColumn(c)) filtered.insert(c);
      }
      for (const std::string& k : table->clustered_key) {
        filtered.insert(ToLower(k));
      }
      cols = std::move(filtered);
    }
    ctx.needed[op] = std::move(cols);

    std::vector<const Expr*> conjs;
    auto it = ctx.single_conjuncts.find(op);
    if (it != ctx.single_conjuncts.end()) conjs = it->second;
    ctx.bounds[op] =
        ExtractBounds(conjs, op, ctx.aliases, table->schema);
  }

  // Overwrite any stale entry: subquery clones may reuse a freed address.
  blocks_[stmt] = std::move(ctx);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Placement enumeration & validity
// ---------------------------------------------------------------------------

Result<std::vector<PlacementVec>> Planner::EnumeratePlacements() {
  size_t n = resolved_.operands.size();
  // Options per operand: remote (nullptr) plus each matching view.
  std::vector<std::vector<const ViewDef*>> options(n);
  for (InputOperandId op = 0; op < n; ++op) {
    if (opts_.allow_remote) options[op].push_back(nullptr);  // remote
    if (opts_.mode != PlanMode::kCache || !opts_.enable_view_matching) {
      continue;
    }
    // Find this operand's block context.
    const BlockCtx* ctx = nullptr;
    for (const auto& [stmt, c] : blocks_) {
      if (c.refs.count(op) > 0) {
        ctx = &c;
        break;
      }
    }
    if (ctx == nullptr) continue;
    const TableDef* table = resolved_.operands[op].table;
    auto matches = MatchViews(catalog_, table->name, ctx->needed.at(op),
                              ctx->bounds.at(op));
    for (const ViewDef* v : matches) {
      // Compile-time currency check: if the bound can never be met by the
      // region (p = 0), the local plan is discarded immediately.
      const RegionDef* region = catalog_.FindRegion(v->region);
      if (region == nullptr) continue;
      SimTimeMs bound = resolved_.constraint.BoundFor(op);
      if (opts_.enable_currency_guards &&
          EstimateLocalProbability(bound, region->update_delay,
                                   region->update_interval) <= 0) {
        continue;
      }
      // A quarantined region's guard refuses every probe (its heartbeat is
      // withdrawn), so a local placement is dead weight whenever remote can
      // serve. Replica-only mode keeps the placement: the run-time guard
      // then reports the quarantine instead of a generic plan failure.
      if (opts_.region_health && opts_.allow_remote &&
          !HeartbeatValid(opts_.region_health(v->region))) {
        continue;
      }
      options[op].push_back(v);
    }
  }

  std::vector<PlacementVec> out;
  PlacementVec current(n);
  std::function<void(size_t)> rec = [&](size_t i) {
    if (static_cast<int>(out.size()) >= opts_.max_placements) return;
    if (i == n) {
      if (PlacementValid(current)) out.push_back(current);
      return;
    }
    for (const ViewDef* v : options[i]) {
      current[i].view = v;
      rec(i + 1);
    }
  };
  rec(0);
  if (out.empty()) {
    return Status::ConstraintViolation(
        opts_.allow_remote
            ? "no valid placement satisfies the consistency constraint"
            : "no local replica can satisfy the query's C&C constraint "
              "(remote fallback disabled)");
  }
  return out;
}

bool Planner::PlacementValid(const PlacementVec& placement) const {
  for (const CcTuple& tuple : resolved_.constraint.tuples) {
    if (tuple.operands.size() < 2) continue;
    // Split class members into local and remote.
    std::vector<InputOperandId> local;
    for (InputOperandId op : tuple.operands) {
      if (placement[op].local()) local.push_back(op);
    }
    if (local.empty()) continue;  // all remote: back-end snapshot, fine
    // Mixed local/remote in one class can never be guaranteed consistent.
    if (local.size() != tuple.operands.size()) return false;
    // All local: must share one region and one block (a single SwitchUnion
    // covers them; separate SwitchUnions in different blocks would decide
    // independently).
    RegionId region = placement[*tuple.operands.begin()].view->region;
    int block = op_block_[*tuple.operands.begin()];
    for (InputOperandId op : tuple.operands) {
      if (placement[op].view->region != region) return false;
      if (op_block_[op] != block) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Estimation helpers
// ---------------------------------------------------------------------------

double Planner::DistinctOf(InputOperandId op, const std::string& column,
                           double fallback) const {
  if (op >= resolved_.operands.size()) return fallback;
  const TableStats& stats = StatsOf(op);
  auto it = stats.columns.find(ToLower(column));
  if (it == stats.columns.end()) {
    // Column names are stored with original case in stats.
    for (const auto& [name, cs] : stats.columns) {
      if (EqualsIgnoreCase(name, column)) {
        return std::max<double>(1.0, static_cast<double>(cs.distinct_count));
      }
    }
    return fallback;
  }
  return std::max<double>(1.0, static_cast<double>(it->second.distinct_count));
}

double Planner::UnitRowsEstimate(const BlockCtx& ctx,
                                 InputOperandId op) const {
  const TableStats& stats = StatsOf(op);
  double rows = static_cast<double>(stats.row_count);
  rows *= BoundsSelectivity(ctx.bounds.at(op), stats);
  // Extra conjuncts that did not produce literal bounds (e.g. parameterized
  // equalities from correlated subqueries).
  auto it = ctx.single_conjuncts.find(op);
  if (it != ctx.single_conjuncts.end()) {
    for (const Expr* c : it->second) {
      if (c->kind != ExprKind::kBinary) {
        rows *= kDefaultSel;
        continue;
      }
      // Skip conjuncts already reflected in the bounds.
      auto is_lit_cmp = [&](const Expr* l, const Expr* r) {
        return l->kind == ExprKind::kColumnRef &&
               r->kind == ExprKind::kLiteral;
      };
      if ((c->left && c->right &&
           (is_lit_cmp(c->left.get(), c->right.get()) ||
            is_lit_cmp(c->right.get(), c->left.get())))) {
        continue;  // handled by BoundsSelectivity
      }
      if (c->op == BinaryOp::kEq && c->left &&
          c->left->kind == ExprKind::kColumnRef) {
        rows /= DistinctOf(op, c->left->column,
                           std::max(1.0, 1.0 / kDefaultSel));
      } else {
        rows *= kDefaultSel;
      }
    }
  }
  return std::max(rows, 0.0);
}

std::unique_ptr<Expr> Planner::ConjunctionOf(
    const std::vector<const Expr*>& conjuncts) const {
  std::unique_ptr<Expr> out;
  for (const Expr* c : conjuncts) {
    auto clone = c->Clone();
    out = out ? Expr::MakeBinary(BinaryOp::kAnd, std::move(out),
                                 std::move(clone))
              : std::move(clone);
  }
  return out;
}

RowLayout Planner::UnitLayout(const BlockCtx& ctx,
                              const std::vector<InputOperandId>& ops) const {
  RowLayout layout;
  for (InputOperandId op : ops) {
    const TableDef* table = resolved_.operands[op].table;
    const std::set<std::string>& needed = ctx.needed.at(op);
    for (const Column& c : table->schema.columns()) {
      if (needed.count(ToLower(c.name)) > 0) {
        layout.Add(op, c.name, c.type);
      }
    }
  }
  return layout;
}

std::unique_ptr<SelectStmt> Planner::SynthesizeRemoteStmt(
    const BlockCtx& ctx, const std::vector<InputOperandId>& ops,
    const RowLayout& layout, const std::vector<const Expr*>& extra) const {
  auto stmt = std::make_unique<SelectStmt>();
  for (InputOperandId op : ops) {
    TableRef ref;
    ref.table = resolved_.operands[op].table->name;
    ref.alias = resolved_.operands[op].alias;
    ref.resolved_operand = op;
    stmt->from.push_back(std::move(ref));
  }
  // Select list mirrors the unit layout exactly.
  for (const BoundColumn& slot : layout.slots()) {
    SelectItem item;
    item.expr = Expr::MakeColumn(resolved_.operands[slot.operand].alias,
                                 slot.column);
    stmt->items.push_back(std::move(item));
  }
  std::vector<const Expr*> where;
  for (InputOperandId op : ops) {
    auto it = ctx.single_conjuncts.find(op);
    if (it != ctx.single_conjuncts.end()) {
      where.insert(where.end(), it->second.begin(), it->second.end());
    }
  }
  where.insert(where.end(), extra.begin(), extra.end());
  stmt->where = ConjunctionOf(where);
  return stmt;
}

Result<RemoteEstimate> Planner::EstimateRemote(const SelectStmt& stmt) const {
  return EstimateBackendQuery(stmt, catalog_, opts_.costs);
}

// ---------------------------------------------------------------------------
// Scan construction (shared by local views and back-end tables)
// ---------------------------------------------------------------------------

Result<std::unique_ptr<PhysicalOp>> Planner::BuildScan(
    const BlockCtx& ctx, InputOperandId op, const ScanTarget& target,
    const Schema& storage_schema,
    const std::vector<std::string>& clustered_key,
    const std::vector<IndexDef>& indexes, const TableStats& stats,
    double stats_scale, const std::string& param_column,
    const Expr* param_outer) {
  auto scan = std::make_unique<PhysicalOp>();
  scan->kind = PhysOpKind::kLocalScan;
  scan->target = target;
  scan->operand = op;
  for (const Column& c : storage_schema.columns()) {
    scan->layout.Add(op, c.name, c.type);
  }

  const auto& bounds = ctx.bounds.at(op);
  double total_rows = static_cast<double>(stats.row_count) * stats_scale;
  double matches = UnitRowsEstimate(ctx, op) * stats_scale;

  // Candidate access paths, costed against the (scaled) storage.
  TableStats scaled = stats;
  scaled.row_count = static_cast<int64_t>(total_rows);
  double best_cost = FullScanCost(scaled, opts_.costs);
  std::string best_index;      // "" = clustered
  const std::string* seek_col = nullptr;  // bounds column driving the seek
  bool best_is_seek = false;

  auto try_path = [&](const std::string& index_name,
                      const std::string& first_col, bool clustered) {
    // Parameterized equality on the leading column?
    if (!param_column.empty() && EqualsIgnoreCase(first_col, param_column)) {
      double probe_matches =
          std::max(1.0, total_rows / DistinctOf(op, first_col, total_rows));
      double cost = clustered
                        ? ClusteredRangeCost(scaled, probe_matches, opts_.costs)
                        : SecondaryIndexCost(probe_matches, opts_.costs);
      if (cost < best_cost) {
        best_cost = cost;
        best_index = index_name;
        seek_col = &param_column;
        best_is_seek = true;
      }
      return;
    }
    auto bit = bounds.find(ToLower(first_col));
    if (bit == bounds.end()) return;
    const RangeBound& b = bit->second;
    if (!b.lo && !b.hi) return;
    double frac = stats.RangeSelectivity(first_col, b.lo ? &*b.lo : nullptr,
                                         b.hi ? &*b.hi : nullptr);
    if (b.has_eq) frac = stats.EqSelectivity(first_col);
    double range_matches = total_rows * frac;
    double cost = clustered
                      ? ClusteredRangeCost(scaled, range_matches, opts_.costs)
                      : SecondaryIndexCost(range_matches, opts_.costs);
    if (cost < best_cost) {
      best_cost = cost;
      best_index = index_name;
      seek_col = &bit->first;
      best_is_seek = false;
    }
  };

  if (!clustered_key.empty()) try_path("", clustered_key[0], true);
  for (const IndexDef& idx : indexes) {
    if (!idx.columns.empty()) try_path(idx.name, idx.columns[0], false);
  }

  if (seek_col != nullptr) {
    scan->index_name = best_index;
    if (best_is_seek) {
      // Parameterized point seek on the leading column.
      scan->seek_lo.push_back(param_outer->Clone());
      scan->seek_hi.push_back(param_outer->Clone());
    } else {
      const RangeBound& b = bounds.at(ToLower(*seek_col));
      // Stamp the source literal's offset so the plan cache can parameterize
      // the seek; the residual keeps every conjunct, so a reused seek bound
      // can only be wider than optimal, never wrong.
      if (b.lo) {
        auto lo = Expr::MakeLiteral(*b.lo);
        lo->literal_offset = b.lo_offset;
        scan->seek_lo.push_back(std::move(lo));
      }
      if (b.hi) {
        auto hi = Expr::MakeLiteral(*b.hi);
        hi->literal_offset = b.hi_offset;
        scan->seek_hi.push_back(std::move(hi));
      }
    }
  }

  // Residual: all single-operand conjuncts (idempotent with the seek), plus
  // the parameterized equality so exactness never depends on the seek.
  std::vector<const Expr*> residual_conjs;
  auto it = ctx.single_conjuncts.find(op);
  if (it != ctx.single_conjuncts.end()) residual_conjs = it->second;
  std::unique_ptr<Expr> residual = ConjunctionOf(residual_conjs);
  if (!param_column.empty()) {
    auto eq = Expr::MakeBinary(
        BinaryOp::kEq,
        Expr::MakeColumn(resolved_.operands[op].alias,
                         param_column),
        param_outer->Clone());
    residual = residual ? Expr::MakeBinary(BinaryOp::kAnd, std::move(residual),
                                           std::move(eq))
                        : std::move(eq);
  }
  scan->residual = std::move(residual);

  scan->est_rows = !param_column.empty()
                       ? std::max(1.0, total_rows /
                                           DistinctOf(op, param_column,
                                                      total_rows))
                       : matches;
  scan->est_cost = best_cost;
  return scan;
}

// ---------------------------------------------------------------------------
// Unit construction
// ---------------------------------------------------------------------------

Result<UnitPlan> Planner::BuildLocalUnit(
    const BlockCtx& ctx, const std::vector<InputOperandId>& ops,
    const PlacementVec& placement, RegionId region, SimTimeMs bound,
    const std::string& param_column, const Expr* param_outer) {
  // Local branch: scans of the matched views, joined left-deep.
  std::unique_ptr<PhysicalOp> local;
  double local_cost = 0;
  double local_rows = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    InputOperandId op = ops[i];
    const ViewDef* view = placement[op].view;
    RCC_ASSIGN_OR_RETURN(Schema view_schema, catalog_.ViewSchema(*view));
    const TableDef* table = resolved_.operands[op].table;
    const TableStats& stats = StatsOf(op);

    // Scale stats down by the view predicate's selectivity and width.
    std::map<std::string, RangeBound> view_bounds;
    for (const ColumnRange& r : view->predicate) {
      RangeBound b;
      b.lo = r.lo;
      b.hi = r.hi;
      view_bounds[ToLower(r.column)] = b;
    }
    double view_sel = BoundsSelectivity(view_bounds, stats);

    ScanTarget target;
    target.is_view = true;
    target.name = view->name;
    RCC_ASSIGN_OR_RETURN(
        auto scan,
        BuildScan(ctx, op, target, view_schema,
                  table->clustered_key, view->secondary_indexes, stats,
                  view_sel, i == 0 ? param_column : std::string(),
                  i == 0 ? param_outer : nullptr));
    scan->delivered = ConsistencyProperty::Leaf(view->region, op);

    if (local == nullptr) {
      local_rows = scan->est_rows;
      local_cost = scan->est_cost;
      local = std::move(scan);
    } else {
      // Join the next view in. Conjuncts newly applicable here:
      std::set<InputOperandId> left_ops(ops.begin(), ops.begin() + i);
      std::vector<const Expr*> applicable;
      for (const Expr* c : ctx.multi_conjuncts) {
        std::set<InputOperandId> combined = left_ops;
        combined.insert(op);
        std::set<InputOperandId> just_left = left_ops;
        if (ExprCoveredByOperands(c, combined, ctx.aliases, false) &&
            !ExprCoveredByOperands(c, just_left, ctx.aliases, false)) {
          applicable.push_back(c);
        }
      }
      // Index nested-loop alternative: a parameterized seek into the new
      // view on one equi-join column.
      const Expr* seek_outer = nullptr;
      const Expr* seek_inner = nullptr;
      for (const Expr* c : applicable) {
        if (c->kind != ExprKind::kBinary || c->op != BinaryOp::kEq) continue;
        if (c->left->kind != ExprKind::kColumnRef ||
            c->right->kind != ExprKind::kColumnRef) {
          continue;
        }
        const Expr* lcol = c->left.get();
        const Expr* rcol = c->right.get();
        std::set<InputOperandId> rset{op};
        if (ExprCoveredByOperands(lcol, rset, ctx.aliases, false)) {
          std::swap(lcol, rcol);
        }
        if (!ExprCoveredByOperands(rcol, rset, ctx.aliases, false)) continue;
        seek_outer = lcol;
        seek_inner = rcol;
        break;
      }
      std::unique_ptr<PhysicalOp> param_scan;
      if (seek_outer != nullptr) {
        RCC_ASSIGN_OR_RETURN(
            param_scan,
            BuildScan(ctx, op, scan->target, view_schema,
                      table->clustered_key, view->secondary_indexes, stats,
                      view_sel, seek_inner->column, seek_outer));
        param_scan->delivered = ConsistencyProperty::Leaf(view->region, op);
      }
      double nlj_cost = param_scan == nullptr
                            ? -1.0
                            : local_cost + local_rows * param_scan->est_cost;
      double hash_cost =
          local_cost + scan->est_cost +
          (local_rows + scan->est_rows) * opts_.costs.hash_row_ms;

      auto join = std::make_unique<PhysicalOp>();
      std::vector<const Expr*> residual;
      double sel = 1.0;
      bool use_seek = param_scan != nullptr && nlj_cost < hash_cost;
      for (const Expr* c : applicable) {
        bool is_eq_join =
            c->kind == ExprKind::kBinary && c->op == BinaryOp::kEq &&
            c->left->kind == ExprKind::kColumnRef &&
            c->right->kind == ExprKind::kColumnRef;
        if (is_eq_join && !use_seek) {
          const Expr* lcol = c->left.get();
          const Expr* rcol = c->right.get();
          std::set<InputOperandId> rset{op};
          if (ExprCoveredByOperands(lcol, rset, ctx.aliases, false)) {
            std::swap(lcol, rcol);
          }
          join->exprs.push_back(lcol->Clone());
          join->exprs2.push_back(rcol->Clone());
          double d = std::max(DistinctOf(op, rcol->column, local_rows), 1.0);
          sel /= d;
        } else if (is_eq_join && use_seek) {
          // The seek enforces one equality; others become residuals.
          const Expr* lcol = c->left.get();
          if (lcol != seek_outer && c->right.get() != seek_outer) {
            residual.push_back(c);
          }
          double d = std::max(DistinctOf(op, seek_inner->column, local_rows),
                              1.0);
          sel /= d;
        } else {
          residual.push_back(c);
          sel *= kDefaultSel;
        }
      }
      std::unique_ptr<PhysicalOp> inner =
          use_seek ? std::move(param_scan) : std::move(scan);
      join->kind = use_seek || join->exprs.empty()
                       ? PhysOpKind::kNestedLoopJoin
                       : PhysOpKind::kHashJoin;
      join->residual = ConjunctionOf(residual);
      join->layout = RowLayout::Concat(local->layout, inner->layout);
      double rows = use_seek ? local_rows * inner->est_rows
                             : local_rows * inner->est_rows * sel;
      join->est_rows = std::max(rows, 0.0);
      join->est_cost = use_seek ? nlj_cost : hash_cost;
      join->delivered =
          ConsistencyProperty::Join(local->delivered, inner->delivered);
      join->children.push_back(std::move(local));
      join->children.push_back(std::move(inner));
      local_rows = join->est_rows;
      local_cost = join->est_cost;
      local = std::move(join);
    }
  }

  // Project the local branch to the canonical unit layout.
  RowLayout unit_layout = UnitLayout(ctx, ops);
  auto project = std::make_unique<PhysicalOp>();
  project->kind = PhysOpKind::kProject;
  project->layout = unit_layout;
  for (const BoundColumn& slot : unit_layout.slots()) {
    project->exprs.push_back(Expr::MakeColumn(
        resolved_.operands[slot.operand].alias, slot.column));
  }
  project->est_rows = local_rows;
  project->est_cost = local_cost + local_rows * opts_.costs.cpu_per_row * 0.2;
  project->delivered = local->delivered;
  project->children.push_back(std::move(local));

  UnitPlan unit;
  unit.ops.insert(ops.begin(), ops.end());
  if (ops.size() == 1) unit.seek_op = ops[0];

  if (!opts_.enable_currency_guards) {
    unit.rows = project->est_rows;
    unit.cost = project->est_cost;
    unit.op = std::move(project);
    return unit;
  }

  // Remote branch + SwitchUnion with currency guard.
  std::vector<const Expr*> extra;
  std::unique_ptr<Expr> param_eq;
  if (!param_column.empty()) {
    param_eq = Expr::MakeBinary(
        BinaryOp::kEq,
        Expr::MakeColumn(resolved_.operands[ops[0]].alias, param_column),
        param_outer->Clone());
    extra.push_back(param_eq.get());
  }
  for (const Expr* c : ctx.multi_conjuncts) {
    std::set<InputOperandId> opset(ops.begin(), ops.end());
    if (ExprCoveredByOperands(c, opset, ctx.aliases, false)) {
      extra.push_back(c);
    }
  }
  auto remote_stmt = SynthesizeRemoteStmt(ctx, ops, unit_layout, extra);
  RCC_ASSIGN_OR_RETURN(RemoteEstimate est, EstimateRemote(*remote_stmt));

  auto remote = std::make_unique<PhysicalOp>();
  remote->kind = PhysOpKind::kRemoteQuery;
  remote->layout = unit_layout;
  remote->remote_stmt = std::move(remote_stmt);
  remote->remote_operands.insert(ops.begin(), ops.end());
  remote->est_rows = project->est_rows;
  remote->est_cost =
      RemoteQueryCost(est.cost, project->est_rows,
                      static_cast<double>(unit_layout.num_slots()),
                      opts_.costs);
  remote->delivered =
      ConsistencyProperty::Uniform(kBackendRegion, remote->remote_operands);

  const RegionDef* region_def = catalog_.FindRegion(region);
  double p = region_def == nullptr
                 ? 0.0
                 : EstimateLocalProbability(bound, region_def->update_delay,
                                            region_def->update_interval);
  if (opts_.region_health && !HeartbeatValid(opts_.region_health(region))) {
    // Quarantined at plan time: the guard cannot pass until a resync
    // completes, so SwitchUnionCost must price this plan as remote-only.
    p = 0.0;
  }

  auto sw = std::make_unique<PhysicalOp>();
  sw->kind = PhysOpKind::kSwitchUnion;
  sw->layout = unit_layout;
  sw->guard_region = region;
  sw->guard_bound_ms = bound;
  sw->remote_fallback_allowed = opts_.allow_remote;
  sw->est_local_p = p;
  sw->est_rows = project->est_rows;
  sw->est_cost =
      SwitchUnionCost(p, project->est_cost, remote->est_cost, opts_.costs);
  std::vector<ConsistencyProperty> child_props{project->delivered,
                                               remote->delivered};
  sw->delivered =
      ConsistencyProperty::SwitchUnion(child_props, &next_dynamic_);
  sw->children.push_back(std::move(project));
  sw->children.push_back(std::move(remote));

  unit.rows = sw->est_rows;
  unit.cost = sw->est_cost;
  unit.op = std::move(sw);
  return unit;
}

Result<UnitPlan> Planner::BuildRemoteUnit(
    const BlockCtx& ctx, const std::vector<InputOperandId>& ops) {
  RowLayout layout = UnitLayout(ctx, ops);
  std::vector<const Expr*> extra;
  if (ops.size() > 1) {
    // Push the intra-unit join conjuncts to the back-end.
    std::set<InputOperandId> opset(ops.begin(), ops.end());
    for (const Expr* c : ctx.multi_conjuncts) {
      if (ExprCoveredByOperands(c, opset, ctx.aliases, false)) {
        extra.push_back(c);
      }
    }
  }
  auto stmt = SynthesizeRemoteStmt(ctx, ops, layout, extra);
  RCC_ASSIGN_OR_RETURN(RemoteEstimate est, EstimateRemote(*stmt));

  auto remote = std::make_unique<PhysicalOp>();
  remote->kind = PhysOpKind::kRemoteQuery;
  remote->layout = layout;
  remote->remote_stmt = std::move(stmt);
  remote->remote_operands.insert(ops.begin(), ops.end());
  remote->est_rows = est.rows;
  remote->est_cost =
      RemoteQueryCost(est.cost, est.rows,
                      static_cast<double>(layout.num_slots()), opts_.costs);
  remote->delivered =
      ConsistencyProperty::Uniform(kBackendRegion, remote->remote_operands);

  UnitPlan unit;
  unit.ops.insert(ops.begin(), ops.end());
  unit.rows = remote->est_rows;
  unit.cost = remote->est_cost;
  unit.op = std::move(remote);
  return unit;
}

Result<UnitPlan> Planner::BuildBackendUnit(const BlockCtx& ctx,
                                           InputOperandId op) {
  const TableDef* table = resolved_.operands[op].table;
  ScanTarget target;
  target.is_view = false;
  target.name = table->name;
  RCC_ASSIGN_OR_RETURN(
      auto scan, BuildScan(ctx, op, target, table->schema,
                           table->clustered_key, table->secondary_indexes,
                           StatsOf(op), 1.0, std::string(), nullptr));
  scan->delivered = ConsistencyProperty::Leaf(kBackendRegion, op);

  UnitPlan unit;
  unit.ops.insert(op);
  unit.seek_op = op;
  unit.rows = scan->est_rows;
  unit.cost = scan->est_cost;
  unit.op = std::move(scan);
  unit.rebuild = [this, &ctx, op](const std::string& column,
                                  const Expr& outer_ref) {
    return BuildBackendUnitParam(ctx, op, column, &outer_ref);
  };
  return unit;
}

Result<UnitPlan> Planner::BuildBackendUnitParam(const BlockCtx& ctx,
                                                InputOperandId op,
                                                const std::string& column,
                                                const Expr* outer_ref) {
  const TableDef* table = resolved_.operands[op].table;
  ScanTarget target;
  target.is_view = false;
  target.name = table->name;
  RCC_ASSIGN_OR_RETURN(
      auto scan, BuildScan(ctx, op, target, table->schema,
                           table->clustered_key, table->secondary_indexes,
                           StatsOf(op), 1.0, column, outer_ref));
  scan->delivered = ConsistencyProperty::Leaf(kBackendRegion, op);
  UnitPlan unit;
  unit.ops.insert(op);
  unit.seek_op = op;
  unit.rows = scan->est_rows;
  unit.cost = scan->est_cost;
  unit.op = std::move(scan);
  return unit;
}

// ---------------------------------------------------------------------------
// Join enumeration over units
// ---------------------------------------------------------------------------

Result<std::unique_ptr<PhysicalOp>> Planner::JoinUnits(
    const BlockCtx& ctx, std::vector<UnitPlan> units,
    const std::vector<const Expr*>& conjuncts) {
  if (units.size() == 1) {
    // All residual conjuncts apply here (conjuncts referencing only outer
    // blocks evaluate through the outer scope at run time).
    if (conjuncts.empty()) return std::move(units[0].op);
    auto filter = std::make_unique<PhysicalOp>();
    filter->kind = PhysOpKind::kFilter;
    filter->layout = units[0].op->layout;
    filter->residual = ConjunctionOf(conjuncts);
    filter->est_rows =
        units[0].rows * std::pow(kDefaultSel, conjuncts.size());
    filter->est_cost =
        units[0].cost + units[0].rows * opts_.costs.cpu_per_row;
    filter->delivered = units[0].op->delivered;
    filter->children.push_back(std::move(units[0].op));
    return filter;
  }

  // Enumerate left-deep join orders over unit summaries first; build once.
  size_t n = units.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<size_t> best_order = order;
  double best_cost = -1;

  auto estimate_order = [&](const std::vector<size_t>& ord) {
    std::set<InputOperandId> covered = units[ord[0]].ops;
    double rows = units[ord[0]].rows;
    double cost = units[ord[0]].cost;
    for (size_t i = 1; i < ord.size(); ++i) {
      const UnitPlan& next = units[ord[i]];
      std::set<InputOperandId> combined = covered;
      combined.insert(next.ops.begin(), next.ops.end());
      double sel = 1.0;
      bool has_eq = false;
      bool seekable = false;
      double seek_distinct = 1.0;
      for (const Expr* c : conjuncts) {
        if (!ExprCoveredByOperands(c, combined, ctx.aliases, false)) continue;
        if (ExprCoveredByOperands(c, covered, ctx.aliases, false)) continue;
        if (ExprCoveredByOperands(c, next.ops, ctx.aliases, false)) continue;
        if (c->kind == ExprKind::kBinary && c->op == BinaryOp::kEq &&
            c->left->kind == ExprKind::kColumnRef &&
            c->right->kind == ExprKind::kColumnRef) {
          has_eq = true;
          const Expr* rcol = c->right.get();
          if (!ExprCoveredByOperands(rcol, next.ops, ctx.aliases, false)) {
            rcol = c->left.get();
          }
          double d = DistinctOf(next.seek_op, rcol->column,
                                std::max(1.0, next.rows));
          sel /= std::max(1.0, d);
          if (next.rebuild) {
            seekable = true;
            seek_distinct = std::max(seek_distinct, d);
          }
        } else {
          sel *= kDefaultSel;
        }
      }
      double out_rows = std::max(1.0, rows * next.rows * sel);
      double hash_cost = next.cost +
                         (rows + next.rows) * opts_.costs.hash_row_ms +
                         out_rows * opts_.costs.cpu_per_row;
      if (!has_eq) {
        hash_cost = next.cost + rows * next.rows * opts_.costs.cpu_per_row;
      }
      double join_cost = hash_cost;
      if (seekable) {
        // Index nested loop: one (amortized-guard) probe per outer row.
        double per_probe =
            opts_.costs.seek_ms +
            std::max(1.0, next.rows / seek_distinct) *
                opts_.costs.cpu_per_row;
        double nlj_cost =
            rows * per_probe + out_rows * opts_.costs.cpu_per_row;
        join_cost = std::min(join_cost, nlj_cost);
      }
      cost += join_cost;
      rows = out_rows;
      covered = std::move(combined);
    }
    return cost;
  };

  if (n <= 5) {
    std::vector<size_t> perm = order;
    std::sort(perm.begin(), perm.end());
    do {
      double c = estimate_order(perm);
      if (best_cost < 0 || c < best_cost) {
        best_cost = c;
        best_order = perm;
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
  }

  // Build the chosen order.
  std::vector<const Expr*> remaining = conjuncts;
  std::unique_ptr<PhysicalOp> current = std::move(units[best_order[0]].op);
  std::set<InputOperandId> covered = units[best_order[0]].ops;
  double rows = units[best_order[0]].rows;
  double cost = units[best_order[0]].cost;

  for (size_t i = 1; i < best_order.size(); ++i) {
    UnitPlan& next = units[best_order[i]];
    std::set<InputOperandId> combined = covered;
    combined.insert(next.ops.begin(), next.ops.end());

    // Conjuncts newly applicable at this join.
    std::vector<const Expr*> applicable;
    std::vector<const Expr*> still_remaining;
    for (const Expr* c : remaining) {
      if (ExprCoveredByOperands(c, combined, ctx.aliases, false) &&
          !ExprCoveredByOperands(c, covered, ctx.aliases, false) &&
          !ExprCoveredByOperands(c, next.ops, ctx.aliases, false)) {
        applicable.push_back(c);
      } else {
        still_remaining.push_back(c);
      }
    }
    remaining = std::move(still_remaining);

    // Index-nested-loop alternative: a parameterized seek into the next
    // unit on an equi-join column, re-fetching (or re-probing the guard's
    // cached branch) per outer row.
    const Expr* seek_outer = nullptr;
    std::string seek_column;
    if (next.rebuild) {
      for (const Expr* c : applicable) {
        if (c->kind != ExprKind::kBinary || c->op != BinaryOp::kEq) continue;
        if (c->left->kind != ExprKind::kColumnRef ||
            c->right->kind != ExprKind::kColumnRef) {
          continue;
        }
        const Expr* lcol = c->left.get();
        const Expr* rcol = c->right.get();
        if (ExprCoveredByOperands(lcol, next.ops, ctx.aliases, false)) {
          std::swap(lcol, rcol);
        }
        if (!ExprCoveredByOperands(rcol, next.ops, ctx.aliases, false)) {
          continue;
        }
        seek_outer = lcol;
        seek_column = rcol->column;
        break;
      }
    }
    if (seek_outer != nullptr) {
      RCC_ASSIGN_OR_RETURN(UnitPlan probe,
                           next.rebuild(seek_column, *seek_outer));
      double nlj_rows = std::max(1.0, rows * probe.rows);
      double nlj_cost = cost + rows * probe.cost +
                        nlj_rows * opts_.costs.cpu_per_row;
      double d = 1.0;
      {
        auto it = ctx.aliases.find(ToLower(seek_column));
        (void)it;
        d = DistinctOf(next.seek_op, seek_column, std::max(1.0, next.rows));
      }
      double hash_rows =
          std::max(1.0, rows * next.rows / std::max(1.0, d));
      double hash_cost = cost + next.cost +
                         (rows + next.rows) * opts_.costs.hash_row_ms +
                         hash_rows * opts_.costs.cpu_per_row;
      if (nlj_cost < hash_cost) {
        auto join = std::make_unique<PhysicalOp>();
        join->kind = PhysOpKind::kNestedLoopJoin;
        // Residual: everything applicable except the seek equality, which
        // the parameterized access already enforces.
        std::vector<const Expr*> residual;
        for (const Expr* c : applicable) {
          bool is_seek =
              c->kind == ExprKind::kBinary && c->op == BinaryOp::kEq &&
              ((c->left.get() == seek_outer) || (c->right.get() == seek_outer));
          if (!is_seek) residual.push_back(c);
        }
        join->residual = ConjunctionOf(residual);
        join->layout = RowLayout::Concat(current->layout, probe.op->layout);
        join->est_rows = nlj_rows;
        join->est_cost = nlj_cost;
        join->delivered = ConsistencyProperty::Join(current->delivered,
                                                    probe.op->delivered);
        join->children.push_back(std::move(current));
        join->children.push_back(std::move(probe.op));
        rows = join->est_rows;
        cost = join->est_cost;
        covered = std::move(combined);
        current = std::move(join);
        continue;
      }
    }

    auto join = std::make_unique<PhysicalOp>();
    std::vector<const Expr*> residual;
    double sel = 1.0;
    for (const Expr* c : applicable) {
      bool is_eq_join = c->kind == ExprKind::kBinary &&
                        c->op == BinaryOp::kEq &&
                        c->left->kind == ExprKind::kColumnRef &&
                        c->right->kind == ExprKind::kColumnRef;
      if (is_eq_join) {
        const Expr* lcol = c->left.get();
        const Expr* rcol = c->right.get();
        if (ExprCoveredByOperands(lcol, next.ops, ctx.aliases, false)) {
          std::swap(lcol, rcol);
        }
        join->exprs.push_back(lcol->Clone());
        join->exprs2.push_back(rcol->Clone());
        double d = 1.0;
        {
          // Distinct of the inner join column, falling back to unit rows.
          auto it = ctx.aliases.find(ToLower(rcol->table));
          InputOperandId rop =
              it != ctx.aliases.end() ? it->second : kInvalidOperand;
          d = DistinctOf(rop, rcol->column, std::max(1.0, next.rows));
        }
        sel /= std::max(1.0, d);
      } else {
        residual.push_back(c);
        sel *= kDefaultSel;
      }
    }
    join->kind = join->exprs.empty() ? PhysOpKind::kNestedLoopJoin
                                     : PhysOpKind::kHashJoin;
    join->residual = ConjunctionOf(residual);
    join->layout = RowLayout::Concat(current->layout, next.op->layout);
    join->est_rows = std::max(1.0, rows * next.rows * sel);
    join->est_cost = cost + next.cost +
                     (rows + next.rows) * opts_.costs.hash_row_ms +
                     join->est_rows * opts_.costs.cpu_per_row;
    join->delivered =
        ConsistencyProperty::Join(current->delivered, next.op->delivered);
    join->children.push_back(std::move(current));
    join->children.push_back(std::move(next.op));
    rows = join->est_rows;
    cost = join->est_cost;
    covered = std::move(combined);
    current = std::move(join);
  }

  if (!remaining.empty()) {
    // Anything left (e.g. bare-column or cross-block-ish conjuncts) becomes
    // a top filter.
    auto filter = std::make_unique<PhysicalOp>();
    filter->kind = PhysOpKind::kFilter;
    filter->layout = current->layout;
    filter->residual = ConjunctionOf(remaining);
    filter->est_rows =
        std::max(1.0, rows * std::pow(kDefaultSel, remaining.size()));
    filter->est_cost = cost + rows * opts_.costs.cpu_per_row;
    filter->delivered = current->delivered;
    filter->children.push_back(std::move(current));
    current = std::move(filter);
  }
  return current;
}

// ---------------------------------------------------------------------------
// Block planning
// ---------------------------------------------------------------------------

Result<std::unique_ptr<PhysicalOp>> Planner::PlanBlock(
    const SelectStmt& stmt, const PlacementVec& placement,
    InputOperandId pseudo_id) {
  const BlockCtx& ctx = blocks_.at(&stmt);

  // 1. Build units.
  std::vector<UnitPlan> units;
  if (opts_.mode == PlanMode::kBackend) {
    for (InputOperandId op : ctx.base_ops) {
      RCC_ASSIGN_OR_RETURN(UnitPlan unit, BuildBackendUnit(ctx, op));
      units.push_back(std::move(unit));
    }
  } else {
    // Group local operands of this block by their consistency class.
    std::set<InputOperandId> done;
    std::vector<InputOperandId> remote_ops;
    for (InputOperandId op : ctx.base_ops) {
      if (done.count(op) > 0) continue;
      if (!placement[op].local()) {
        remote_ops.push_back(op);
        done.insert(op);
        continue;
      }
      const CcTuple* tuple = resolved_.constraint.TupleFor(op);
      std::vector<InputOperandId> group{op};
      done.insert(op);
      if (tuple != nullptr) {
        for (InputOperandId other : ctx.base_ops) {
          if (done.count(other) > 0 || !placement[other].local()) continue;
          if (tuple->operands.count(other) > 0) {
            group.push_back(other);
            done.insert(other);
          }
        }
      }
      SimTimeMs bound = resolved_.constraint.BoundFor(op);
      RegionId region = placement[op].view->region;
      RCC_ASSIGN_OR_RETURN(
          UnitPlan unit,
          BuildLocalUnit(ctx, group, placement, region, bound, std::string(),
                         nullptr));
      if (group.size() == 1) {
        // Index-nested-loop inner alternative: same unit with a
        // parameterized equality pushed into the view access.
        unit.rebuild = [this, &ctx, group, &placement, region, bound](
                           const std::string& column, const Expr& outer_ref) {
          return BuildLocalUnit(ctx, group, placement, region, bound, column,
                                &outer_ref);
        };
      }
      units.push_back(std::move(unit));
    }
    if (!remote_ops.empty()) {
      // Strategy choice: fetch each table separately (local join) vs. one
      // combined remote query (remote join). Cost decides.
      bool combined_better = false;
      if (remote_ops.size() > 1) {
        double split_cost = 0;
        for (InputOperandId op : remote_ops) {
          RCC_ASSIGN_OR_RETURN(UnitPlan u, BuildRemoteUnit(ctx, {op}));
          split_cost += u.cost;
        }
        RCC_ASSIGN_OR_RETURN(UnitPlan comb, BuildRemoteUnit(ctx, remote_ops));
        combined_better = comb.cost < split_cost;
      }
      if (combined_better) {
        RCC_ASSIGN_OR_RETURN(UnitPlan comb, BuildRemoteUnit(ctx, remote_ops));
        units.push_back(std::move(comb));
      } else {
        for (InputOperandId op : remote_ops) {
          RCC_ASSIGN_OR_RETURN(UnitPlan u, BuildRemoteUnit(ctx, {op}));
          units.push_back(std::move(u));
        }
      }
    }
  }

  // Derived-table units.
  for (const TableRef* ref : ctx.derived) {
    InputOperandId pseudo = ctx.derived_pseudo.at(ToLower(ref->alias));
    RCC_ASSIGN_OR_RETURN(auto child,
                         PlanBlock(*ref->subquery, placement, pseudo));
    child->own_aliases = std::make_shared<AliasMap>(
        blocks_.at(ref->subquery.get()).aliases);
    UnitPlan unit;
    unit.ops.insert(pseudo);
    unit.rows = child->est_rows;
    unit.cost = child->est_cost;
    unit.op = std::move(child);
    units.push_back(std::move(unit));
  }

  // 2. Join + residual filters.
  RCC_ASSIGN_OR_RETURN(auto current,
                       JoinUnits(ctx, std::move(units), ctx.multi_conjuncts));

  // 3. Subquery conjuncts: plan each nested block, filter on top.
  if (!ctx.subquery_conjuncts.empty()) {
    std::vector<std::unique_ptr<Expr>> cloned;
    double sub_cost = 0;
    // The subqueries' data sources take part in the overall consistency
    // property: the filter's delivered property joins them in.
    ConsistencyProperty combined = current->delivered;
    for (const Expr* c : ctx.subquery_conjuncts) {
      auto clone = c->Clone();
      // Plan every subquery inside the clone (keyed by the cloned stmt).
      std::function<Status(Expr*)> plan_subs = [&](Expr* e) -> Status {
        if (e == nullptr) return Status::OK();
        if (e->subquery != nullptr) {
          // The clone needs its own block contexts before planning.
          RCC_RETURN_NOT_OK(PrepareBlocks(e->subquery.get()));
          RCC_ASSIGN_OR_RETURN(
              auto sub_root,
              PlanBlock(*e->subquery, placement, kInvalidOperand));
          sub_cost += sub_root->est_cost;
          combined = ConsistencyProperty::Join(combined, sub_root->delivered);
          SubPlan sp;
          sp.aliases = blocks_.at(e->subquery.get()).aliases;
          sp.root = std::move(sub_root);
          subplans_[e->subquery.get()] = std::move(sp);
        }
        RCC_RETURN_NOT_OK(plan_subs(e->left.get()));
        RCC_RETURN_NOT_OK(plan_subs(e->right.get()));
        for (auto& a : e->args) RCC_RETURN_NOT_OK(plan_subs(a.get()));
        return Status::OK();
      };
      RCC_RETURN_NOT_OK(plan_subs(clone.get()));
      cloned.push_back(std::move(clone));
    }
    auto filter = std::make_unique<PhysicalOp>();
    filter->kind = PhysOpKind::kFilter;
    filter->layout = current->layout;
    std::unique_ptr<Expr> residual;
    for (auto& c : cloned) {
      residual = residual ? Expr::MakeBinary(BinaryOp::kAnd,
                                             std::move(residual), std::move(c))
                          : std::move(c);
    }
    filter->residual = std::move(residual);
    filter->est_rows = std::max(1.0, current->est_rows * 0.5);
    filter->est_cost =
        current->est_cost + current->est_rows * (sub_cost + 0.001);
    filter->delivered = std::move(combined);
    filter->children.push_back(std::move(current));
    current = std::move(filter);
  }

  return FinishBlock(ctx, std::move(current), placement, pseudo_id);
}

Result<std::unique_ptr<PhysicalOp>> Planner::FinishBlock(
    const BlockCtx& ctx, std::unique_ptr<PhysicalOp> input,
    const PlacementVec& placement, InputOperandId pseudo_id) {
  (void)placement;
  const SelectStmt& stmt = *ctx.stmt;
  std::unique_ptr<PhysicalOp> current = std::move(input);

  // Aggregation.
  bool has_agg = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    if (ContainsAggregate(item.expr.get())) has_agg = true;
  }
  if (stmt.having != nullptr && ContainsAggregate(stmt.having.get())) {
    has_agg = true;
  }
  if (stmt.having != nullptr && !has_agg) {
    return Status::NotSupported("HAVING requires a grouped query");
  }
  // Aggregate slots by their textual rendering; HAVING aggregates that do
  // not appear in the select list get hidden slots.
  std::map<std::string, std::string> agg_slot_names;
  if (has_agg) {
    auto agg = std::make_unique<PhysicalOp>();
    agg->kind = PhysOpKind::kHashAggregate;
    double key_card = 1.0;
    for (const auto& g : stmt.group_by) {
      agg->exprs.push_back(g->Clone());
      if (g->kind == ExprKind::kColumnRef) {
        auto it = ctx.aliases.find(ToLower(g->table));
        InputOperandId gop =
            !g->table.empty() && it != ctx.aliases.end() ? it->second
                                                         : kInvalidOperand;
        // Key slot keeps provenance so later references resolve.
        ValueType t = ValueType::kInt64;
        if (gop != kInvalidOperand && gop < resolved_.operands.size()) {
          const TableDef* table = resolved_.operands[gop].table;
          if (auto ci = table->schema.FindColumn(g->column)) {
            t = table->schema.column(*ci).type;
          }
          key_card *= DistinctOf(gop, g->column, 10.0);
        } else {
          key_card *= 10.0;
        }
        agg->layout.Add(gop, g->column, t);
      } else {
        agg->layout.Add(kInvalidOperand,
                        "key" + std::to_string(agg->exprs.size() - 1),
                        ValueType::kDouble);
        key_card *= 10.0;
      }
    }
    int agg_i = 0;
    auto add_agg = [&](const Expr* e,
                       const std::string& preferred_name) -> Status {
      AggItem a;
      a.func = e->func;
      a.star = e->star;
      if (!e->star) {
        if (e->args.size() != 1) {
          return Status::NotSupported("aggregate with != 1 argument");
        }
        a.arg = e->args[0]->Clone();
      }
      a.out_name = !preferred_name.empty()
                       ? preferred_name
                       : e->func + "_" + std::to_string(agg_i);
      agg_slot_names[e->ToString()] = a.out_name;
      agg->layout.Add(kInvalidOperand, a.out_name,
                      a.func == "count" ? ValueType::kInt64
                                        : ValueType::kDouble);
      agg->aggs.push_back(std::move(a));
      ++agg_i;
      return Status::OK();
    };
    for (const auto& item : stmt.items) {
      const Expr* e = item.expr.get();
      if (e->kind == ExprKind::kFuncCall && IsAggregateFunc(e->func)) {
        RCC_RETURN_NOT_OK(add_agg(e, item.alias));
      } else if (ContainsAggregate(e)) {
        return Status::NotSupported(
            "expressions over aggregates are not supported");
      }
    }
    // Hidden slots for HAVING aggregates not already in the select list.
    if (stmt.having != nullptr) {
      std::function<Status(const Expr*)> collect_aggs =
          [&](const Expr* e) -> Status {
        if (e == nullptr) return Status::OK();
        if (e->kind == ExprKind::kFuncCall && IsAggregateFunc(e->func)) {
          if (agg_slot_names.count(e->ToString()) == 0) {
            RCC_RETURN_NOT_OK(add_agg(e, "having_" + std::to_string(agg_i)));
          }
          return Status::OK();
        }
        RCC_RETURN_NOT_OK(collect_aggs(e->left.get()));
        RCC_RETURN_NOT_OK(collect_aggs(e->right.get()));
        for (const auto& a : e->args) {
          RCC_RETURN_NOT_OK(collect_aggs(a.get()));
        }
        return Status::OK();
      };
      RCC_RETURN_NOT_OK(collect_aggs(stmt.having.get()));
    }
    agg->est_rows = stmt.group_by.empty()
                        ? 1.0
                        : std::min(current->est_rows, key_card);
    agg->est_cost =
        current->est_cost + current->est_rows * opts_.costs.hash_row_ms;
    agg->delivered = current->delivered;
    agg->children.push_back(std::move(current));
    current = std::move(agg);

    if (stmt.having != nullptr) {
      // Rewrite aggregate subtrees in HAVING to references to their slots.
      std::function<std::unique_ptr<Expr>(const Expr&)> rewrite =
          [&](const Expr& e) -> std::unique_ptr<Expr> {
        if (e.kind == ExprKind::kFuncCall && IsAggregateFunc(e.func)) {
          return Expr::MakeColumn("", agg_slot_names.at(e.ToString()));
        }
        auto clone = std::make_unique<Expr>();
        clone->kind = e.kind;
        clone->literal = e.literal;
        clone->literal_offset = e.literal_offset;
        clone->param_index = e.param_index;
        clone->table = e.table;
        clone->column = e.column;
        clone->op = e.op;
        clone->func = e.func;
        clone->star = e.star;
        if (e.left) clone->left = rewrite(*e.left);
        if (e.right) clone->right = rewrite(*e.right);
        for (const auto& a : e.args) clone->args.push_back(rewrite(*a));
        if (e.subquery) clone->subquery = CloneSelectStmt(*e.subquery);
        return clone;
      };
      auto filter = std::make_unique<PhysicalOp>();
      filter->kind = PhysOpKind::kFilter;
      filter->layout = current->layout;
      filter->residual = rewrite(*stmt.having);
      filter->est_rows = std::max(1.0, current->est_rows * 0.5);
      filter->est_cost =
          current->est_cost + current->est_rows * opts_.costs.cpu_per_row;
      filter->delivered = current->delivered;
      filter->children.push_back(std::move(current));
      current = std::move(filter);
    }
  }

  // Final projection in select-list (or FROM) order.
  auto project = std::make_unique<PhysicalOp>();
  project->kind = PhysOpKind::kProject;
  InputOperandId tag_base = pseudo_id;
  if (stmt.select_star) {
    for (const BoundColumn& slot : current->layout.slots()) {
      project->exprs.push_back(Expr::MakeColumn("", slot.column));
      // Use unqualified lookup against the child layout; ambiguous star
      // outputs are rejected at execution.
      project->layout.Add(
          tag_base != kInvalidOperand ? tag_base : slot.operand, slot.column,
          ValueType::kInt64);
    }
    // Star projection over the child's layout verbatim: just forward rows.
    project->exprs.clear();
    for (const BoundColumn& slot : current->layout.slots()) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kColumnRef;
      e->table = slot.operand != kInvalidOperand &&
                         slot.operand < resolved_.operands.size()
                     ? resolved_.operands[slot.operand].alias
                     : "";
      e->column = slot.column;
      project->exprs.push_back(std::move(e));
    }
  } else {
    int i = 0;
    int agg_j = 0;  // aggregate ordinal, matching the aggregation operator
    for (const auto& item : stmt.items) {
      const Expr* e = item.expr.get();
      std::unique_ptr<Expr> out_expr;
      std::string name = item.alias;
      InputOperandId tag = tag_base;
      if (e->kind == ExprKind::kFuncCall && IsAggregateFunc(e->func)) {
        // Aggregate output slot by name (named at aggregation time).
        std::string out_name =
            !item.alias.empty() ? item.alias
                                : e->func + "_" + std::to_string(agg_j);
        ++agg_j;
        out_expr = Expr::MakeColumn("", out_name);
        if (name.empty()) name = out_name;
      } else {
        out_expr = e->Clone();
        if (name.empty()) {
          name = e->kind == ExprKind::kColumnRef ? e->column
                                                 : "col" + std::to_string(i);
        }
      }
      if (tag == kInvalidOperand && e->kind == ExprKind::kColumnRef &&
          !e->table.empty()) {
        auto it = ctx.aliases.find(ToLower(e->table));
        if (it != ctx.aliases.end()) tag = it->second;
      }
      project->layout.Add(tag, name, ValueType::kInt64);
      project->exprs.push_back(std::move(out_expr));
      ++i;
    }
  }
  project->distinct = stmt.distinct;
  project->est_rows =
      stmt.distinct ? std::max(1.0, current->est_rows * 0.5)
                    : current->est_rows;
  project->est_cost =
      current->est_cost + current->est_rows * opts_.costs.cpu_per_row * 0.2 +
      (stmt.distinct ? current->est_rows * opts_.costs.hash_row_ms : 0.0);
  project->delivered = current->delivered;
  project->children.push_back(std::move(current));
  current = std::move(project);

  // ORDER BY on the projected output.
  if (!stmt.order_by.empty()) {
    auto sort = std::make_unique<PhysicalOp>();
    sort->kind = PhysOpKind::kSort;
    sort->layout = current->layout;
    for (const auto& o : stmt.order_by) {
      SortKey k;
      k.expr = o.expr->Clone();
      k.descending = o.descending;
      sort->sort_keys.push_back(std::move(k));
    }
    double n = std::max(current->est_rows, 2.0);
    sort->est_rows = current->est_rows;
    sort->est_cost =
        current->est_cost + n * std::log2(n) * opts_.costs.cpu_per_row;
    sort->delivered = current->delivered;
    sort->children.push_back(std::move(current));
    current = std::move(sort);
  }
  return current;
}

// ---------------------------------------------------------------------------
// Top-level driver
// ---------------------------------------------------------------------------

Result<QueryPlan> Planner::Run(ResolvedQuery resolved) {
  resolved_ = std::move(resolved);
  next_pseudo_ = static_cast<uint32_t>(resolved_.operands.size());
  op_block_.assign(resolved_.operands.size(), 0);
  RCC_RETURN_NOT_OK(PrepareBlocks(resolved_.stmt.get()));

  struct Candidate {
    std::unique_ptr<PhysicalOp> root;
    std::map<const SelectStmt*, SubPlan> subplans;
    double cost = 0;
  };
  std::optional<Candidate> best;

  if (opts_.mode == PlanMode::kBackend) {
    PlacementVec placement(resolved_.operands.size());
    subplans_.clear();
    RCC_ASSIGN_OR_RETURN(
        auto root,
        PlanBlock(*resolved_.stmt, placement, kInvalidOperand));
    Candidate c;
    c.cost = root->est_cost;
    c.root = std::move(root);
    c.subplans = std::move(subplans_);
    best = std::move(c);
  } else {
    RCC_ASSIGN_OR_RETURN(auto placements, EnumeratePlacements());
    for (const PlacementVec& placement : placements) {
      subplans_.clear();
      next_dynamic_ = kDynamicRegionBase;
      auto root_or =
          PlanBlock(*resolved_.stmt, placement, kInvalidOperand);
      if (!root_or.ok()) {
        if (root_or.status().code() == StatusCode::kNotSupported) continue;
        return root_or.status();
      }
      auto root = std::move(root_or).value();
      // Final compile-time consistency check (paper's satisfaction rule).
      if (!root->delivered.Satisfies(resolved_.constraint)) continue;
      if (!best || root->est_cost < best->cost) {
        Candidate c;
        c.cost = root->est_cost;
        c.root = std::move(root);
        c.subplans = std::move(subplans_);
        best = std::move(c);
      }
    }
  }

  if (!best) {
    return Status::ConstraintViolation(
        "no plan satisfies the query's C&C constraints");
  }

  QueryPlan plan;
  plan.root = std::move(best->root);
  plan.subplans = std::move(best->subplans);
  plan.aliases = blocks_.at(resolved_.stmt.get()).aliases;
  plan.est_cost = best->cost;
  plan.resolved = std::move(resolved_);
  return plan;
}

}  // namespace

Result<QueryPlan> Optimize(ResolvedQuery resolved, const Catalog& catalog,
                           const OptimizerOptions& options) {
  Planner planner(catalog, options);
  return planner.Run(std::move(resolved));
}

Result<RemoteEstimate> EstimateBackendQuery(const SelectStmt& stmt,
                                            const Catalog& catalog,
                                            const CostParams& costs) {
  RCC_ASSIGN_OR_RETURN(ResolvedQuery resolved, ResolveQuery(stmt, catalog));
  OptimizerOptions opts;
  opts.mode = PlanMode::kBackend;
  opts.costs = costs;
  Planner planner(catalog, opts);
  RCC_ASSIGN_OR_RETURN(QueryPlan plan, planner.Run(std::move(resolved)));
  RemoteEstimate est;
  est.cost = plan.root->est_cost;
  est.rows = plan.root->est_rows;
  return est;
}

}  // namespace rcc
