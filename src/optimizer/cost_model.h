#ifndef RCC_OPTIMIZER_COST_MODEL_H_
#define RCC_OPTIMIZER_COST_MODEL_H_

#include "catalog/statistics.h"
#include "common/clock.h"

namespace rcc {

/// Calibration constants of the cost model, all in milliseconds. Absolute
/// values are arbitrary; plan choices depend only on their ratios (e.g.
/// remote round-trip vs. page scan), which mirror the paper's environment:
/// a LAN round trip to the back-end costs as much as scanning many pages.
struct CostParams {
  double cpu_per_row = 0.0002;
  double page_io_ms = 0.2;
  double seek_ms = 0.05;
  /// Random row fetch through a secondary index (one per match).
  double random_fetch_ms = 0.004;
  double hash_row_ms = 0.0006;
  /// Fixed cost of any remote query (round trip + remote setup).
  double remote_rtt_ms = 2.0;
  /// Per transferred row / per transferred value cell. Width-aware transfer
  /// is what makes fetching base tables and joining locally beat shipping a
  /// join whose result is larger than its inputs (paper Q2 / plan 2).
  double remote_per_row_ms = 0.001;
  double remote_per_cell_ms = 0.0005;
  /// Work done at the back-end is weighted by this factor: the whole point
  /// of the mid-tier cache is that back-end capacity is the scarce resource
  /// (paper §1, "a back-end database server that is overloaded").
  double backend_load_factor = 5.0;
  /// Evaluating one currency guard (heartbeat probe + comparison).
  double guard_ms = 0.03;
  double page_bytes = 8192.0;
  /// -- fault model (resilient remote policy; all default to a healthy link
  /// so existing plan choices are unchanged) ------------------------------
  /// Probability that one remote attempt fails transiently and is retried.
  double remote_failure_rate = 0.0;
  /// Charged per retry round: backoff wait + re-issue overhead.
  double remote_retry_ms = 1.0;
  /// Probability that the back-end is hard-down (outage / open breaker) when
  /// the remote branch fires; the query then degrades to a guard re-probe
  /// plus a local-view serve.
  double remote_outage_rate = 0.0;
  /// Retry rounds the resilience policy burns against a hard-down back-end
  /// before giving up and degrading (mirrors RemotePolicy::max_retries).
  /// Each failed round costs a backoff wait plus a wasted round trip.
  double remote_retry_rounds = 3.0;
};

/// The paper's Eq. (1): probability that the local branch of a guarded plan
/// qualifies, for currency bound B, propagation delay d and propagation
/// interval f, with query start uniform over the sync cycle:
///   p = 0           if B - d <= 0
///   p = (B - d)/f   if 0 < B - d <= f
///   p = 1           if B - d > f
/// Continuous propagation (f = 0) degenerates to p = [B > d].
double EstimateLocalProbability(SimTimeMs bound_ms, SimTimeMs delay_ms,
                                SimTimeMs interval_ms);

/// Expected cost of a SwitchUnion with a currency guard (paper §3.2.4):
///   c = p * c_local + (1 - p) * c_remote_eff + c_guard
/// where c_remote_eff extends the paper's c_remote with the fault model:
/// transient failures add the geometric expectation of retry rounds
/// (q/(1-q) rounds of backoff + round trip for attempt-failure rate q), and
/// a hard outage (rate o) replaces the remote serve with the degraded
/// branch. The degraded branch is *not* free of remote costs: before the
/// policy gives up it burns its whole retry budget against the dead link —
/// remote_retry_rounds failed rounds of (backoff + round trip) — and only
/// then re-probes the guard and serves locally:
///   c_remote_eff = (1-o) * (c_remote + q/(1-q) * (retry + rtt))
///                +    o  * (rounds * (retry + rtt) + guard + c_local).
/// Omitting the burned rounds (as an earlier revision did) priced outages as
/// nearly-free local serves and biased plans toward remote branches exactly
/// when the link was least reliable. With the default healthy-link
/// parameters (q = o = 0) this reduces exactly to the paper's formula.
double SwitchUnionCost(double p, double local_cost, double remote_cost,
                       const CostParams& params);

/// Cost of a full scan of `stats.row_count` rows.
double FullScanCost(const TableStats& stats, const CostParams& params);

/// Cost of a clustered-key range scan returning `matches` rows (fraction of
/// the pages proportional to selectivity).
double ClusteredRangeCost(const TableStats& stats, double matches,
                          const CostParams& params);

/// Cost of a secondary-index range scan returning `matches` rows (one random
/// row fetch per match).
double SecondaryIndexCost(double matches, const CostParams& params);

/// Cost of shipping a query remotely given the back-end execution cost and
/// the estimated result size (`result_cols` values per row).
double RemoteQueryCost(double backend_cost, double result_rows,
                       double result_cols, const CostParams& params);

}  // namespace rcc

#endif  // RCC_OPTIMIZER_COST_MODEL_H_
