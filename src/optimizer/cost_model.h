#ifndef RCC_OPTIMIZER_COST_MODEL_H_
#define RCC_OPTIMIZER_COST_MODEL_H_

#include "catalog/statistics.h"
#include "common/clock.h"

namespace rcc {

/// Calibration constants of the cost model, all in milliseconds. Absolute
/// values are arbitrary; plan choices depend only on their ratios (e.g.
/// remote round-trip vs. page scan), which mirror the paper's environment:
/// a LAN round trip to the back-end costs as much as scanning many pages.
struct CostParams {
  double cpu_per_row = 0.0002;
  double page_io_ms = 0.2;
  double seek_ms = 0.05;
  /// Random row fetch through a secondary index (one per match).
  double random_fetch_ms = 0.004;
  double hash_row_ms = 0.0006;
  /// Fixed cost of any remote query (round trip + remote setup).
  double remote_rtt_ms = 2.0;
  /// Per transferred row / per transferred value cell. Width-aware transfer
  /// is what makes fetching base tables and joining locally beat shipping a
  /// join whose result is larger than its inputs (paper Q2 / plan 2).
  double remote_per_row_ms = 0.001;
  double remote_per_cell_ms = 0.0005;
  /// Work done at the back-end is weighted by this factor: the whole point
  /// of the mid-tier cache is that back-end capacity is the scarce resource
  /// (paper §1, "a back-end database server that is overloaded").
  double backend_load_factor = 5.0;
  /// Evaluating one currency guard (heartbeat probe + comparison).
  double guard_ms = 0.03;
  double page_bytes = 8192.0;
};

/// The paper's Eq. (1): probability that the local branch of a guarded plan
/// qualifies, for currency bound B, propagation delay d and propagation
/// interval f, with query start uniform over the sync cycle:
///   p = 0           if B - d <= 0
///   p = (B - d)/f   if 0 < B - d <= f
///   p = 1           if B - d > f
/// Continuous propagation (f = 0) degenerates to p = [B > d].
double EstimateLocalProbability(SimTimeMs bound_ms, SimTimeMs delay_ms,
                                SimTimeMs interval_ms);

/// Expected cost of a SwitchUnion with a currency guard (paper §3.2.4):
///   c = p * c_local + (1 - p) * c_remote + c_guard.
double SwitchUnionCost(double p, double local_cost, double remote_cost,
                       const CostParams& params);

/// Cost of a full scan of `stats.row_count` rows.
double FullScanCost(const TableStats& stats, const CostParams& params);

/// Cost of a clustered-key range scan returning `matches` rows (fraction of
/// the pages proportional to selectivity).
double ClusteredRangeCost(const TableStats& stats, double matches,
                          const CostParams& params);

/// Cost of a secondary-index range scan returning `matches` rows (one random
/// row fetch per match).
double SecondaryIndexCost(double matches, const CostParams& params);

/// Cost of shipping a query remotely given the back-end execution cost and
/// the estimated result size (`result_cols` values per row).
double RemoteQueryCost(double backend_cost, double result_rows,
                       double result_cols, const CostParams& params);

}  // namespace rcc

#endif  // RCC_OPTIMIZER_COST_MODEL_H_
