#include "optimizer/view_matching.h"

#include "common/strings.h"

namespace rcc {

namespace {

/// If `e` is a column reference belonging to `op` (by alias or — bare — by
/// schema membership), returns the lower-cased column name.
std::optional<std::string> ColumnOf(const Expr* e, InputOperandId op,
                                    const AliasMap& aliases,
                                    const Schema& schema) {
  if (e == nullptr || e->kind != ExprKind::kColumnRef) return std::nullopt;
  if (!e->table.empty()) {
    auto it = aliases.find(ToLower(e->table));
    if (it == aliases.end() || it->second != op) return std::nullopt;
    return ToLower(e->column);
  }
  if (schema.FindColumn(e->column)) return ToLower(e->column);
  return std::nullopt;
}

void ApplyBound(RangeBound* b, BinaryOp op, const Value& lit,
                size_t offset = Expr::kNoOffset) {
  auto tighten_lo = [&](const Value& v, bool strict) {
    if (!b->lo || v.Compare(*b->lo) > 0 ||
        (v.Compare(*b->lo) == 0 && strict)) {
      b->lo = v;
      b->lo_strict = strict;
      b->lo_offset = offset;
    }
  };
  auto tighten_hi = [&](const Value& v, bool strict) {
    if (!b->hi || v.Compare(*b->hi) < 0 ||
        (v.Compare(*b->hi) == 0 && strict)) {
      b->hi = v;
      b->hi_strict = strict;
      b->hi_offset = offset;
    }
  };
  switch (op) {
    case BinaryOp::kEq:
      tighten_lo(lit, false);
      tighten_hi(lit, false);
      b->has_eq = true;
      break;
    case BinaryOp::kGt:
      tighten_lo(lit, true);
      break;
    case BinaryOp::kGe:
      tighten_lo(lit, false);
      break;
    case BinaryOp::kLt:
      tighten_hi(lit, true);
      break;
    case BinaryOp::kLe:
      tighten_hi(lit, false);
      break;
    default:
      break;
  }
}

BinaryOp Mirror(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;
  }
}

}  // namespace

std::map<std::string, RangeBound> ExtractBounds(
    const std::vector<const Expr*>& conjuncts, InputOperandId op,
    const AliasMap& aliases, const Schema& schema) {
  std::map<std::string, RangeBound> out;
  for (const Expr* c : conjuncts) {
    if (c == nullptr || c->kind != ExprKind::kBinary) continue;
    BinaryOp bop = c->op;
    if (bop != BinaryOp::kEq && bop != BinaryOp::kLt && bop != BinaryOp::kLe &&
        bop != BinaryOp::kGt && bop != BinaryOp::kGe) {
      continue;
    }
    const Expr* l = c->left.get();
    const Expr* r = c->right.get();
    // col <cmp> literal
    if (auto col = ColumnOf(l, op, aliases, schema);
        col && r->kind == ExprKind::kLiteral && !r->literal.is_null()) {
      ApplyBound(&out[*col], bop, r->literal, r->literal_offset);
      continue;
    }
    // literal <cmp> col  (mirror the comparison)
    if (auto col = ColumnOf(r, op, aliases, schema);
        col && l->kind == ExprKind::kLiteral && !l->literal.is_null()) {
      ApplyBound(&out[*col], Mirror(bop), l->literal, l->literal_offset);
    }
  }
  return out;
}

double BoundsSelectivity(const std::map<std::string, RangeBound>& bounds,
                         const TableStats& stats) {
  double sel = 1.0;
  for (const auto& [col, b] : bounds) {
    if (b.has_eq) {
      sel *= stats.EqSelectivity(col);
    } else {
      const Value* lo = b.lo ? &*b.lo : nullptr;
      const Value* hi = b.hi ? &*b.hi : nullptr;
      sel *= stats.RangeSelectivity(col, lo, hi);
    }
  }
  return sel;
}

bool RangeSubsumed(const ColumnRange& range,
                   const std::map<std::string, RangeBound>& bounds) {
  auto it = bounds.find(ToLower(range.column));
  if (it == bounds.end()) return false;  // query may select outside the view
  const RangeBound& b = it->second;
  if (range.lo) {
    if (!b.lo) return false;
    int c = b.lo->Compare(*range.lo);
    if (c < 0) return false;  // query admits values below the view range
  }
  if (range.hi) {
    if (!b.hi) return false;
    int c = b.hi->Compare(*range.hi);
    if (c > 0) return false;
  }
  return true;
}

std::vector<const ViewDef*> MatchViews(
    const Catalog& catalog, const std::string& table_name,
    const std::set<std::string>& needed_columns,
    const std::map<std::string, RangeBound>& bounds) {
  std::vector<const ViewDef*> out;
  for (const ViewDef* view : catalog.ViewsOnTable(table_name)) {
    bool covers = true;
    for (const std::string& col : needed_columns) {
      bool found = false;
      for (const std::string& vc : view->columns) {
        if (EqualsIgnoreCase(vc, col)) {
          found = true;
          break;
        }
      }
      if (!found) {
        covers = false;
        break;
      }
    }
    if (!covers) continue;
    bool subsumed = true;
    for (const ColumnRange& range : view->predicate) {
      if (!RangeSubsumed(range, bounds)) {
        subsumed = false;
        break;
      }
    }
    if (!subsumed) continue;
    out.push_back(view);
  }
  return out;
}

}  // namespace rcc
