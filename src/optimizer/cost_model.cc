#include "optimizer/cost_model.h"

#include <algorithm>

namespace rcc {

double EstimateLocalProbability(SimTimeMs bound_ms, SimTimeMs delay_ms,
                                SimTimeMs interval_ms) {
  double slack = static_cast<double>(bound_ms - delay_ms);
  if (slack <= 0) return 0.0;
  if (interval_ms <= 0) return 1.0;  // continuous propagation
  if (slack > static_cast<double>(interval_ms)) return 1.0;
  return slack / static_cast<double>(interval_ms);
}

double SwitchUnionCost(double p, double local_cost, double remote_cost,
                       const CostParams& params) {
  double remote_eff = remote_cost;
  double q = std::clamp(params.remote_failure_rate, 0.0, 0.95);
  if (q > 0) {
    // Geometric expectation of retry rounds before a success.
    remote_eff += q / (1.0 - q) * (params.remote_retry_ms +
                                   params.remote_rtt_ms);
  }
  double o = std::clamp(params.remote_outage_rate, 0.0, 1.0);
  if (o > 0) {
    // Degraded branch: every retry round was actually burned against the
    // dead link (backoff wait + wasted round trip each) before the guard
    // re-probe and the local serve replace the remote result.
    double burned = std::max(0.0, params.remote_retry_rounds) *
                    (params.remote_retry_ms + params.remote_rtt_ms);
    double degraded = burned + params.guard_ms + local_cost;
    remote_eff = (1.0 - o) * remote_eff + o * degraded;
  }
  return p * local_cost + (1.0 - p) * remote_eff + params.guard_ms;
}

double FullScanCost(const TableStats& stats, const CostParams& params) {
  return stats.EstimatedPages(params.page_bytes) * params.page_io_ms +
         static_cast<double>(stats.row_count) * params.cpu_per_row;
}

double ClusteredRangeCost(const TableStats& stats, double matches,
                          const CostParams& params) {
  double frac = stats.row_count > 0
                    ? matches / static_cast<double>(stats.row_count)
                    : 0.0;
  frac = std::clamp(frac, 0.0, 1.0);
  return params.seek_ms +
         stats.EstimatedPages(params.page_bytes) * frac * params.page_io_ms +
         matches * params.cpu_per_row;
}

double SecondaryIndexCost(double matches, const CostParams& params) {
  return params.seek_ms +
         matches * (params.random_fetch_ms + params.cpu_per_row);
}

double RemoteQueryCost(double backend_cost, double result_rows,
                       double result_cols, const CostParams& params) {
  return params.remote_rtt_ms + params.backend_load_factor * backend_cost +
         result_rows * (params.remote_per_row_ms +
                        result_cols * params.remote_per_cell_ms);
}

}  // namespace rcc
