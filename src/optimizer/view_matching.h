#ifndef RCC_OPTIMIZER_VIEW_MATCHING_H_
#define RCC_OPTIMIZER_VIEW_MATCHING_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/expr.h"

namespace rcc {

/// Inclusive/exclusive range bounds extracted from predicate conjuncts on a
/// single column.
struct RangeBound {
  std::optional<Value> lo;
  std::optional<Value> hi;
  bool lo_strict = false;  // lo excluded (col > lo)
  bool hi_strict = false;  // hi excluded (col < hi)
  bool has_eq = false;     // an equality pins the column
  /// Source positions of the winning lo/hi literals (Expr::kNoOffset when the
  /// literal carried none). Lets the optimizer stamp synthesized seek-bound
  /// literals so the plan cache can parameterize them; the residual re-checks
  /// every conjunct, so a reused (possibly wider) seek stays exact.
  size_t lo_offset = Expr::kNoOffset;
  size_t hi_offset = Expr::kNoOffset;
};

/// Per-column bounds implied by `conjuncts` for operand `op`. Only conjuncts
/// of the form <column> <cmp> <literal> (or mirrored) contribute; a column
/// reference matches when its qualifier resolves to `op` via `aliases`, or —
/// for bare references — when `schema` contains the column.
std::map<std::string, RangeBound> ExtractBounds(
    const std::vector<const Expr*>& conjuncts, InputOperandId op,
    const AliasMap& aliases, const Schema& schema);

/// Combined selectivity of the bounds against `stats` (uniformity and
/// independence assumptions).
double BoundsSelectivity(const std::map<std::string, RangeBound>& bounds,
                         const TableStats& stats);

/// View matching (paper §3.2.3 / [GL01], restricted to the prototype's view
/// class: per-table selection+projection views). A view matches an operand
/// access when
///   (a) it projects every needed column, and
///   (b) its selection predicate is *subsumed* by the query's predicate on
///       that operand: every view range is implied by the extracted bounds.
/// Matching views can substitute the base-table access; the optimizer wraps
/// the substitute in a SwitchUnion with a currency guard.
std::vector<const ViewDef*> MatchViews(
    const Catalog& catalog, const std::string& table_name,
    const std::set<std::string>& needed_columns,
    const std::map<std::string, RangeBound>& bounds);

/// True when `bounds` imply `range` (the query can only select rows the view
/// contains).
bool RangeSubsumed(const ColumnRange& range,
                   const std::map<std::string, RangeBound>& bounds);

}  // namespace rcc

#endif  // RCC_OPTIMIZER_VIEW_MATCHING_H_
