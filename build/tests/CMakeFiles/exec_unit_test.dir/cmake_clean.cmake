file(REMOVE_RECURSE
  "CMakeFiles/exec_unit_test.dir/exec_unit_test.cpp.o"
  "CMakeFiles/exec_unit_test.dir/exec_unit_test.cpp.o.d"
  "exec_unit_test"
  "exec_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
