file(REMOVE_RECURSE
  "CMakeFiles/timeline_session.dir/timeline_session.cpp.o"
  "CMakeFiles/timeline_session.dir/timeline_session.cpp.o.d"
  "timeline_session"
  "timeline_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
