# Empty dependencies file for timeline_session.
# This may be replaced when dependencies are built.
