# Empty compiler generated dependencies file for tpcd_cache.
# This may be replaced when dependencies are built.
