file(REMOVE_RECURSE
  "CMakeFiles/tpcd_cache.dir/tpcd_cache.cpp.o"
  "CMakeFiles/tpcd_cache.dir/tpcd_cache.cpp.o.d"
  "tpcd_cache"
  "tpcd_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcd_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
