
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rcc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
