file(REMOVE_RECURSE
  "CMakeFiles/rcc_exec.dir/exec/exec_context.cc.o"
  "CMakeFiles/rcc_exec.dir/exec/exec_context.cc.o.d"
  "CMakeFiles/rcc_exec.dir/exec/executor.cc.o"
  "CMakeFiles/rcc_exec.dir/exec/executor.cc.o.d"
  "CMakeFiles/rcc_exec.dir/exec/iterators.cc.o"
  "CMakeFiles/rcc_exec.dir/exec/iterators.cc.o.d"
  "CMakeFiles/rcc_exec.dir/exec/remote.cc.o"
  "CMakeFiles/rcc_exec.dir/exec/remote.cc.o.d"
  "CMakeFiles/rcc_exec.dir/exec/switch_union.cc.o"
  "CMakeFiles/rcc_exec.dir/exec/switch_union.cc.o.d"
  "librcc_exec.a"
  "librcc_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
