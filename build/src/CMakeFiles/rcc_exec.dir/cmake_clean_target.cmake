file(REMOVE_RECURSE
  "librcc_exec.a"
)
