# Empty dependencies file for rcc_exec.
# This may be replaced when dependencies are built.
