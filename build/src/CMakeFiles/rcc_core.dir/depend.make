# Empty dependencies file for rcc_core.
# This may be replaced when dependencies are built.
