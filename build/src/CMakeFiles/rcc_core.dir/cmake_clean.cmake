file(REMOVE_RECURSE
  "CMakeFiles/rcc_core.dir/core/query_result.cc.o"
  "CMakeFiles/rcc_core.dir/core/query_result.cc.o.d"
  "CMakeFiles/rcc_core.dir/core/session.cc.o"
  "CMakeFiles/rcc_core.dir/core/session.cc.o.d"
  "CMakeFiles/rcc_core.dir/core/system.cc.o"
  "CMakeFiles/rcc_core.dir/core/system.cc.o.d"
  "librcc_core.a"
  "librcc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
