# Empty compiler generated dependencies file for rcc_storage.
# This may be replaced when dependencies are built.
