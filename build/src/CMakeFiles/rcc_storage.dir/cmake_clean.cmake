file(REMOVE_RECURSE
  "CMakeFiles/rcc_storage.dir/storage/schema.cc.o"
  "CMakeFiles/rcc_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/rcc_storage.dir/storage/table.cc.o"
  "CMakeFiles/rcc_storage.dir/storage/table.cc.o.d"
  "CMakeFiles/rcc_storage.dir/storage/value.cc.o"
  "CMakeFiles/rcc_storage.dir/storage/value.cc.o.d"
  "librcc_storage.a"
  "librcc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
