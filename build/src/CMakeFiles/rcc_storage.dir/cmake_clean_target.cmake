file(REMOVE_RECURSE
  "librcc_storage.a"
)
