# Empty dependencies file for rcc_plan.
# This may be replaced when dependencies are built.
