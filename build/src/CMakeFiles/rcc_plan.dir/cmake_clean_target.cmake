file(REMOVE_RECURSE
  "librcc_plan.a"
)
