file(REMOVE_RECURSE
  "CMakeFiles/rcc_plan.dir/plan/expr.cc.o"
  "CMakeFiles/rcc_plan.dir/plan/expr.cc.o.d"
  "CMakeFiles/rcc_plan.dir/plan/physical.cc.o"
  "CMakeFiles/rcc_plan.dir/plan/physical.cc.o.d"
  "CMakeFiles/rcc_plan.dir/plan/properties.cc.o"
  "CMakeFiles/rcc_plan.dir/plan/properties.cc.o.d"
  "librcc_plan.a"
  "librcc_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
