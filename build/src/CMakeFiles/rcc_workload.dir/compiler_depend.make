# Empty compiler generated dependencies file for rcc_workload.
# This may be replaced when dependencies are built.
