file(REMOVE_RECURSE
  "librcc_workload.a"
)
