file(REMOVE_RECURSE
  "CMakeFiles/rcc_workload.dir/workload/bookstore.cc.o"
  "CMakeFiles/rcc_workload.dir/workload/bookstore.cc.o.d"
  "CMakeFiles/rcc_workload.dir/workload/driver.cc.o"
  "CMakeFiles/rcc_workload.dir/workload/driver.cc.o.d"
  "CMakeFiles/rcc_workload.dir/workload/tpcd.cc.o"
  "CMakeFiles/rcc_workload.dir/workload/tpcd.cc.o.d"
  "librcc_workload.a"
  "librcc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
