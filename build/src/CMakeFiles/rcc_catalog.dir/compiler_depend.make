# Empty compiler generated dependencies file for rcc_catalog.
# This may be replaced when dependencies are built.
