file(REMOVE_RECURSE
  "librcc_catalog.a"
)
