file(REMOVE_RECURSE
  "CMakeFiles/rcc_catalog.dir/catalog/catalog.cc.o"
  "CMakeFiles/rcc_catalog.dir/catalog/catalog.cc.o.d"
  "CMakeFiles/rcc_catalog.dir/catalog/statistics.cc.o"
  "CMakeFiles/rcc_catalog.dir/catalog/statistics.cc.o.d"
  "librcc_catalog.a"
  "librcc_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
