file(REMOVE_RECURSE
  "librcc_engine.a"
)
