file(REMOVE_RECURSE
  "CMakeFiles/rcc_engine.dir/backend/backend_server.cc.o"
  "CMakeFiles/rcc_engine.dir/backend/backend_server.cc.o.d"
  "CMakeFiles/rcc_engine.dir/cache/cache_dbms.cc.o"
  "CMakeFiles/rcc_engine.dir/cache/cache_dbms.cc.o.d"
  "librcc_engine.a"
  "librcc_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
