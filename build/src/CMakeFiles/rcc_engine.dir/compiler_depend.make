# Empty compiler generated dependencies file for rcc_engine.
# This may be replaced when dependencies are built.
