file(REMOVE_RECURSE
  "CMakeFiles/rcc_sql.dir/sql/ast.cc.o"
  "CMakeFiles/rcc_sql.dir/sql/ast.cc.o.d"
  "CMakeFiles/rcc_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/rcc_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/rcc_sql.dir/sql/parser.cc.o"
  "CMakeFiles/rcc_sql.dir/sql/parser.cc.o.d"
  "librcc_sql.a"
  "librcc_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
