file(REMOVE_RECURSE
  "librcc_sql.a"
)
