# Empty dependencies file for rcc_sql.
# This may be replaced when dependencies are built.
