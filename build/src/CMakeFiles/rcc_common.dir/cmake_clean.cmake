file(REMOVE_RECURSE
  "CMakeFiles/rcc_common.dir/common/clock.cc.o"
  "CMakeFiles/rcc_common.dir/common/clock.cc.o.d"
  "CMakeFiles/rcc_common.dir/common/status.cc.o"
  "CMakeFiles/rcc_common.dir/common/status.cc.o.d"
  "CMakeFiles/rcc_common.dir/common/strings.cc.o"
  "CMakeFiles/rcc_common.dir/common/strings.cc.o.d"
  "librcc_common.a"
  "librcc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
