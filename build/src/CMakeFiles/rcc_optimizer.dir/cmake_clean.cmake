file(REMOVE_RECURSE
  "CMakeFiles/rcc_optimizer.dir/optimizer/cost_model.cc.o"
  "CMakeFiles/rcc_optimizer.dir/optimizer/cost_model.cc.o.d"
  "CMakeFiles/rcc_optimizer.dir/optimizer/optimizer.cc.o"
  "CMakeFiles/rcc_optimizer.dir/optimizer/optimizer.cc.o.d"
  "CMakeFiles/rcc_optimizer.dir/optimizer/view_matching.cc.o"
  "CMakeFiles/rcc_optimizer.dir/optimizer/view_matching.cc.o.d"
  "librcc_optimizer.a"
  "librcc_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
