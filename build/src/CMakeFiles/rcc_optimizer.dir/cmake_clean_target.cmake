file(REMOVE_RECURSE
  "librcc_optimizer.a"
)
