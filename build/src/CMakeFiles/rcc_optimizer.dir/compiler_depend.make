# Empty compiler generated dependencies file for rcc_optimizer.
# This may be replaced when dependencies are built.
