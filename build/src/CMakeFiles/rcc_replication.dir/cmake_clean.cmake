file(REMOVE_RECURSE
  "CMakeFiles/rcc_replication.dir/replication/agent.cc.o"
  "CMakeFiles/rcc_replication.dir/replication/agent.cc.o.d"
  "CMakeFiles/rcc_replication.dir/replication/heartbeat.cc.o"
  "CMakeFiles/rcc_replication.dir/replication/heartbeat.cc.o.d"
  "CMakeFiles/rcc_replication.dir/replication/region.cc.o"
  "CMakeFiles/rcc_replication.dir/replication/region.cc.o.d"
  "librcc_replication.a"
  "librcc_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
