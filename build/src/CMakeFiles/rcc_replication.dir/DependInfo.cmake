
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replication/agent.cc" "src/CMakeFiles/rcc_replication.dir/replication/agent.cc.o" "gcc" "src/CMakeFiles/rcc_replication.dir/replication/agent.cc.o.d"
  "/root/repo/src/replication/heartbeat.cc" "src/CMakeFiles/rcc_replication.dir/replication/heartbeat.cc.o" "gcc" "src/CMakeFiles/rcc_replication.dir/replication/heartbeat.cc.o.d"
  "/root/repo/src/replication/region.cc" "src/CMakeFiles/rcc_replication.dir/replication/region.cc.o" "gcc" "src/CMakeFiles/rcc_replication.dir/replication/region.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rcc_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
