file(REMOVE_RECURSE
  "librcc_replication.a"
)
