# Empty compiler generated dependencies file for rcc_replication.
# This may be replaced when dependencies are built.
