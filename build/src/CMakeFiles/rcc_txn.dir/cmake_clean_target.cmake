file(REMOVE_RECURSE
  "librcc_txn.a"
)
