# Empty compiler generated dependencies file for rcc_txn.
# This may be replaced when dependencies are built.
