file(REMOVE_RECURSE
  "CMakeFiles/rcc_txn.dir/txn/update_log.cc.o"
  "CMakeFiles/rcc_txn.dir/txn/update_log.cc.o.d"
  "librcc_txn.a"
  "librcc_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
