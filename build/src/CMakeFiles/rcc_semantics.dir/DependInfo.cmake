
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/semantics/constraint.cc" "src/CMakeFiles/rcc_semantics.dir/semantics/constraint.cc.o" "gcc" "src/CMakeFiles/rcc_semantics.dir/semantics/constraint.cc.o.d"
  "/root/repo/src/semantics/model.cc" "src/CMakeFiles/rcc_semantics.dir/semantics/model.cc.o" "gcc" "src/CMakeFiles/rcc_semantics.dir/semantics/model.cc.o.d"
  "/root/repo/src/semantics/resolver.cc" "src/CMakeFiles/rcc_semantics.dir/semantics/resolver.cc.o" "gcc" "src/CMakeFiles/rcc_semantics.dir/semantics/resolver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rcc_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
