file(REMOVE_RECURSE
  "CMakeFiles/rcc_semantics.dir/semantics/constraint.cc.o"
  "CMakeFiles/rcc_semantics.dir/semantics/constraint.cc.o.d"
  "CMakeFiles/rcc_semantics.dir/semantics/model.cc.o"
  "CMakeFiles/rcc_semantics.dir/semantics/model.cc.o.d"
  "CMakeFiles/rcc_semantics.dir/semantics/resolver.cc.o"
  "CMakeFiles/rcc_semantics.dir/semantics/resolver.cc.o.d"
  "librcc_semantics.a"
  "librcc_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
