file(REMOVE_RECURSE
  "librcc_semantics.a"
)
