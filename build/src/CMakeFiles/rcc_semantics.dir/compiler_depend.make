# Empty compiler generated dependencies file for rcc_semantics.
# This may be replaced when dependencies are built.
