file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_shift.dir/bench_workload_shift.cpp.o"
  "CMakeFiles/bench_workload_shift.dir/bench_workload_shift.cpp.o.d"
  "bench_workload_shift"
  "bench_workload_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
