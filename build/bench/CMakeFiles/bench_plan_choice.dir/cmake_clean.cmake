file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_choice.dir/bench_plan_choice.cpp.o"
  "CMakeFiles/bench_plan_choice.dir/bench_plan_choice.cpp.o.d"
  "bench_plan_choice"
  "bench_plan_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
