file(REMOVE_RECURSE
  "CMakeFiles/bench_guard_phases.dir/bench_guard_phases.cpp.o"
  "CMakeFiles/bench_guard_phases.dir/bench_guard_phases.cpp.o.d"
  "bench_guard_phases"
  "bench_guard_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_guard_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
