# Empty dependencies file for bench_guard_phases.
# This may be replaced when dependencies are built.
