file(REMOVE_RECURSE
  "CMakeFiles/bench_guard_overhead.dir/bench_guard_overhead.cpp.o"
  "CMakeFiles/bench_guard_overhead.dir/bench_guard_overhead.cpp.o.d"
  "bench_guard_overhead"
  "bench_guard_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_guard_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
