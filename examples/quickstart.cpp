// Quickstart: stand up a back-end + MTCache pair, cache a projection view,
// and watch the same query switch between local (cached) and remote
// execution as its currency bound changes.

#include <cstdio>

#include "core/rcc.h"
#include "workload/tpcd.h"

using namespace rcc;  // NOLINT — example code

namespace {

void Fail(const Status& st) {
  std::fprintf(stderr, "FATAL: %s\n", st.ToString().c_str());
  std::exit(1);
}

void Run(Session* session, RccSystem* sys, const char* sql) {
  std::printf("\n-- at t=%s: %s\n", FormatSimTime(sys->Now()).c_str(), sql);
  auto result = session->Execute(sql);
  if (!result.ok()) Fail(result.status());
  std::printf("plan shape: %s   (local=%lld remote=%lld guard_evals=%lld)\n",
              std::string(PlanShapeName(result->shape)).c_str(),
              static_cast<long long>(result->stats.switch_local),
              static_cast<long long>(result->stats.switch_remote),
              static_cast<long long>(result->stats.guard_evaluations));
  std::printf("%s", result->ToTable(5).c_str());
}

}  // namespace

int main() {
  RccSystem sys;

  // 1. Load the TPCD subset on the back-end and configure the paper's cache
  //    (views cust_prj and orders_prj in currency regions CR1/CR2).
  TpcdConfig config;
  config.scale = 0.01;  // 1,500 customers
  if (Status st = LoadTpcd(&sys, config); !st.ok()) Fail(st);
  if (Status st = SetupPaperCache(&sys); !st.ok()) Fail(st);

  // 2. Background update traffic so the cached views actually go stale.
  StartUpdateTraffic(&sys, /*period_ms=*/500, /*seed=*/99);

  auto session = sys.CreateSession();

  // 3. Without a currency clause the query keeps traditional semantics:
  //    it must see the latest snapshot, so it runs at the back-end.
  sys.AdvanceTo(30000);
  Run(session.get(), &sys,
      "SELECT c_custkey, c_name, c_acctbal FROM Customer C "
      "WHERE C.c_custkey = 42");

  // 4. With a relaxed bound (10 min) the cached view qualifies: the currency
  //    guard probes CR1's heartbeat and picks the local branch.
  Run(session.get(), &sys,
      "SELECT c_custkey, c_name, c_acctbal FROM Customer C "
      "WHERE C.c_custkey = 42 CURRENCY BOUND 10 MIN ON (C)");

  // 5. A bound below the region's propagation delay (5s) can never be met by
  //    the cache; the optimizer discards the local plan at compile time.
  Run(session.get(), &sys,
      "SELECT c_custkey, c_name, c_acctbal FROM Customer C "
      "WHERE C.c_custkey = 42 CURRENCY BOUND 2 SECONDS ON (C)");

  // 6. A join with per-table bounds and relaxed consistency: Customer can be
  //    30s stale, Orders 60s, and they need not be mutually consistent.
  Run(session.get(), &sys,
      "SELECT C.c_name, O.o_orderkey, O.o_totalprice "
      "FROM Customer C, Orders O "
      "WHERE C.c_custkey = 7 AND O.o_custkey = C.c_custkey "
      "CURRENCY BOUND 30 SECONDS ON (C), BOUND 60 SECONDS ON (O)");

  // 7. Same join but requiring mutual consistency: the views live in
  //    different currency regions, so no local plan can guarantee a shared
  //    snapshot and the query goes to the back-end.
  Run(session.get(), &sys,
      "SELECT C.c_name, O.o_orderkey, O.o_totalprice "
      "FROM Customer C, Orders O "
      "WHERE C.c_custkey = 7 AND O.o_custkey = C.c_custkey "
      "CURRENCY BOUND 60 SECONDS ON (C, O)");

  std::printf("\nquickstart finished OK\n");
  return 0;
}
