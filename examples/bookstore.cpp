// The paper's §2 scenario: a small online book store with Books, Reviews and
// Sales, cached as BooksCopy / ReviewsCopy / SalesCopy. Walks through the
// specification examples E1-E4 and the multi-block queries Q2/Q3, showing
// the normalized constraint and the plan chosen for each.

#include <cstdio>

#include "core/rcc.h"
#include "workload/bookstore.h"

using namespace rcc;  // NOLINT — example code

namespace {

void Fail(const Status& st) {
  std::fprintf(stderr, "FATAL: %s\n", st.ToString().c_str());
  std::exit(1);
}

void Show(Session* session, const char* label, const std::string& sql) {
  std::printf("\n--- %s\n%s\n", label, sql.c_str());
  auto plan = session->Prepare(sql);
  if (!plan.ok()) {
    std::printf("  => %s\n", plan.status().ToString().c_str());
    return;
  }
  std::printf("normalized constraint: %s\n",
              plan->resolved.constraint.ToString().c_str());
  std::printf("plan shape: %s\n",
              std::string(PlanShapeName(plan->Shape())).c_str());
  auto result = session->Execute(sql);
  if (!result.ok()) Fail(result.status());
  std::printf("%s", result->ToTable(4).c_str());
}

}  // namespace

int main() {
  RccSystem sys;
  BookstoreConfig config;
  config.books = 300;
  if (Status st = LoadBookstore(&sys, config); !st.ok()) Fail(st);
  // "Refreshed once every hour" in the paper's narrative; scaled to 60s so
  // the demo turns over quickly.
  if (Status st = SetupBookstoreCache(&sys, /*refresh_interval_ms=*/60000,
                                      /*delay_ms=*/5000);
      !st.ok()) {
    Fail(st);
  }
  sys.AdvanceTo(180000);
  auto session = sys.CreateSession();

  std::printf("Bookstore demo (paper §2). Regions: BooksCopy+SalesCopy in "
              "R1, ReviewsCopy in R2,\nrefresh 60s, delay 5s; now t=%s.\n",
              FormatSimTime(sys.Now()).c_str());

  // E1: both inputs <= 10 min stale and mutually consistent. BooksCopy and
  // ReviewsCopy live in different regions, so the join is forced remote.
  Show(session.get(), "E1: 10 min bound, B and R mutually consistent",
       "SELECT B.isbn, B.title, R.rating FROM Books B, Reviews R "
       "WHERE B.isbn = R.isbn AND B.isbn <= 3 "
       "CURRENCY BOUND 10 MIN ON (B, R)");

  // E2: looser bound on R and no cross-table consistency: both copies work.
  Show(session.get(), "E2: 10 min on B, 30 min on R, independent",
       "SELECT B.isbn, B.title, R.rating FROM Books B, Reviews R "
       "WHERE B.isbn = R.isbn AND B.isbn <= 3 "
       "CURRENCY BOUND 10 MIN ON (B), 30 MIN ON (R)");

  // E3: per-row consistency groups on R (the engine treats the grouped form
  // at table granularity, like the paper's prototype — replication applies
  // whole transactions, so view rows are always mutually consistent).
  Show(session.get(), "E3: independent B rows, R grouped by isbn",
       "SELECT B.isbn, B.title, R.rating FROM Books B, Reviews R "
       "WHERE B.isbn = R.isbn AND B.isbn <= 3 "
       "CURRENCY BOUND 10 MIN ON (B) BY B.isbn, 10 MIN ON (R) BY R.isbn");

  // E4: each Books row consistent with its Reviews rows.
  Show(session.get(), "E4: B consistent with matching R rows, by isbn",
       "SELECT B.isbn, B.title, R.rating FROM Books B, Reviews R "
       "WHERE B.isbn = R.isbn AND B.isbn <= 3 "
       "CURRENCY BOUND 10 MIN ON (B, R) BY B.isbn");

  // Q2 (multi-block): derived table; the outer 5-min class absorbs the
  // inner 10-min class — normalized to 5 min on (S, B, R).
  Show(session.get(), "Q2: derived table, constraints merge to 5 min on all",
       "SELECT T.isbn, S.amount FROM Sales S, "
       "(SELECT B.isbn AS isbn FROM Books B, Reviews R "
       " WHERE B.isbn = R.isbn CURRENCY BOUND 10 MIN ON (B, R)) T "
       "WHERE S.isbn = T.isbn AND T.isbn <= 2 "
       "CURRENCY BOUND 5 MIN ON (S, T)");

  // Q3 (subquery): books with at least one sale in 2003, with the subquery's
  // S consistent with the outer B.
  Show(session.get(), "Q3: correlated EXISTS with cross-block consistency",
       "SELECT B.isbn, B.title FROM Books B, Reviews R "
       "WHERE B.isbn = R.isbn AND B.isbn <= 12 AND EXISTS ("
       " SELECT 1 FROM Sales S WHERE S.isbn = B.isbn AND S.year = 2003 "
       " CURRENCY BOUND 10 MIN ON (S, B)) "
       "CURRENCY BOUND 10 MIN ON (B, R)");

  // Same Q3 but with S unconstrained relative to the outer block: the
  // subquery can now run against SalesCopy.
  Show(session.get(), "Q3': subquery independent -> local subquery allowed",
       "SELECT B.isbn, B.title FROM Books B "
       "WHERE B.isbn <= 12 AND EXISTS ("
       " SELECT 1 FROM Sales S WHERE S.isbn = B.isbn AND S.year = 2003 "
       " CURRENCY BOUND 10 MIN ON (S)) "
       "CURRENCY BOUND 10 MIN ON (B)");

  std::printf("\nbookstore demo finished OK\n");
  return 0;
}
