// Timeline consistency (paper §2.3): inside BEGIN TIMEORDERED ... END
// TIMEORDERED, perceived time never moves backwards — once a session has
// seen a snapshot, later queries may not read older replicas, even when
// their currency bounds would allow it. Outside the bracket, the paper's
// cautionary default applies: a user can update a row and then *not* see
// their own change through a relaxed read.

#include <cstdio>

#include "core/rcc.h"
#include "workload/bookstore.h"

using namespace rcc;  // NOLINT — example code

namespace {

void Fail(const Status& st) {
  std::fprintf(stderr, "FATAL: %s\n", st.ToString().c_str());
  std::exit(1);
}

double PriceOf(Session* session, const char* clause) {
  auto r = session->Execute(
      std::string("SELECT price FROM Books B WHERE B.isbn = 1") + clause);
  if (!r.ok()) Fail(r.status());
  return r->rows[0][0].AsDouble();
}

void UpdatePrice(RccSystem* sys, double price) {
  const Row* row = sys->backend()->table("Books")->Get({Value::Int(1)});
  Row updated = *row;
  updated[2] = Value::Double(price);
  RowOp op;
  op.kind = RowOp::Kind::kUpdate;
  op.table = "Books";
  op.row = std::move(updated);
  auto st = sys->backend()->ExecuteTransaction({op});
  if (!st.ok()) Fail(st.status());
}

}  // namespace

int main() {
  RccSystem sys;
  if (Status st = LoadBookstore(&sys, BookstoreConfig{}); !st.ok()) Fail(st);
  if (Status st = SetupBookstoreCache(&sys, /*refresh_interval_ms=*/20000,
                                      /*delay_ms=*/3000);
      !st.ok()) {
    Fail(st);
  }
  sys.AdvanceTo(30000);
  auto session = sys.CreateSession();
  const char* relaxed = " CURRENCY BOUND 10 MIN ON (B)";

  std::printf("t=%s  initial price (cached read): %.2f\n",
              FormatSimTime(sys.Now()).c_str(), PriceOf(session.get(),
                                                        relaxed));

  // --- Without timeline consistency -----------------------------------------
  UpdatePrice(&sys, 42.42);
  std::printf("\n[default session] update price to 42.42 at the back-end\n");
  std::printf("  tight read sees:   %.2f (current)\n",
              PriceOf(session.get(), ""));
  std::printf("  relaxed read sees: %.2f  <-- own change invisible! "
              "(paper §2.3's warning)\n",
              PriceOf(session.get(), relaxed));

  // --- With timeline consistency ---------------------------------------------
  auto begin = session->Execute("BEGIN TIMEORDERED");
  if (!begin.ok()) Fail(begin.status());
  std::printf("\n[BEGIN TIMEORDERED]\n");
  UpdatePrice(&sys, 43.43);
  std::printf("  update price to 43.43; tight read sees %.2f "
              "(floor now = %s)\n",
              PriceOf(session.get(), ""),
              FormatSimTime(session->timeline_floor()).c_str());
  double seen = PriceOf(session.get(), relaxed);
  std::printf("  relaxed read sees: %.2f  <-- guard floored at the "
              "session's snapshot: no time travel\n",
              seen);
  if (seen != 43.43) {
    std::printf("ERROR: timeline consistency violated!\n");
    return 1;
  }

  // Once replication catches up past the floor, relaxed reads go local again.
  sys.AdvanceTo(60000);
  auto r = session->Execute(
      std::string("SELECT price FROM Books B WHERE B.isbn = 1") + relaxed);
  if (!r.ok()) Fail(r.status());
  std::printf("  after catch-up at t=%s: relaxed read = %.2f via %s branch\n",
              FormatSimTime(sys.Now()).c_str(), r->rows[0][0].AsDouble(),
              r->stats.switch_local > 0 ? "local" : "remote");

  auto end = session->Execute("END TIMEORDERED");
  if (!end.ok()) Fail(end.status());
  std::printf("[END TIMEORDERED]\n\ntimeline demo finished OK\n");
  return 0;
}
