// The paper's §4 evaluation scenario driven interactively: the TPCD
// Customer/Orders back-end with the Table 4.1 cache configuration, live
// update traffic, and a mixed query stream. Prints how the workload splits
// between the cache and the back-end, and how staleness evolves over the
// regions' sync cycles (the Fig 3.2 sawtooth).

#include <cstdio>

#include "common/strings.h"
#include "core/rcc.h"
#include "workload/driver.h"
#include "workload/tpcd.h"

using namespace rcc;  // NOLINT — example code

namespace {

void Fail(const Status& st) {
  std::fprintf(stderr, "FATAL: %s\n", st.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  RccSystem sys;
  TpcdConfig config;
  config.scale = 0.02;  // 3,000 customers / ~30,000 orders
  if (Status st = LoadTpcd(&sys, config); !st.ok()) Fail(st);
  if (Status st = SetupPaperCache(&sys); !st.ok()) Fail(st);
  StartUpdateTraffic(&sys, /*period_ms=*/250, /*seed=*/2024);
  auto session = sys.CreateSession();

  std::printf("TPCD mid-tier cache demo: %lld customers, regions CR1 "
              "(15s/5s) and CR2 (10s/5s)\n",
              static_cast<long long>(TpcdCustomerCount(config)));

  // 1. Watch the staleness sawtooth of CR1 over two sync cycles.
  std::printf("\nCR1 staleness over time (Fig 3.2 sawtooth):\n  t(s):  ");
  for (int t = 30; t <= 75; t += 3) std::printf("%6d", t);
  std::printf("\n  stale: ");
  for (int t = 30; t <= 75; t += 3) {
    sys.AdvanceTo(t * 1000);
    SimTimeMs s = sys.Now() - sys.cache()->LocalHeartbeat(1).value_or(0);
    std::printf("%5.1fs", static_cast<double>(s) / 1000.0);
  }
  std::printf("\n");

  // 2. One customer-facing query, three freshness tiers.
  struct Tier {
    const char* label;
    const char* clause;
  };
  const Tier tiers[] = {
      {"current (no clause)", ""},
      {"30s bound", " CURRENCY BOUND 30 SECONDS ON (C)"},
      {"8s bound", " CURRENCY BOUND 8 SECONDS ON (C)"},
  };
  std::printf("\nAccount-balance lookup under different currency tiers:\n");
  for (const Tier& tier : tiers) {
    std::string sql = std::string("SELECT c_custkey, c_acctbal FROM "
                                  "Customer C WHERE C.c_custkey = 77") +
                      tier.clause;
    auto r = session->Execute(sql);
    if (!r.ok()) Fail(r.status());
    std::printf("  %-22s -> %-26s acctbal=%s\n", tier.label,
                std::string(PlanShapeName(r->shape)).c_str(),
                r->rows.empty() ? "?" : r->rows[0][1].ToString().c_str());
  }

  // 3. A report query repeated across sync cycles: the 12s bound sits
  //    between CR1's delay (5s) and delay+interval (20s), so the guard
  //    routes a predictable fraction locally (Eq. (1): p = 7/15 = 47%).
  auto run = RunUniformWorkload(
      &sys,
      "SELECT c_nationkey, count(*) AS customers, avg(c_acctbal) AS avg_bal "
      "FROM Customer C WHERE c_acctbal > 0 GROUP BY c_nationkey "
      "CURRENCY BOUND 12 SECONDS ON (C)",
      /*executions=*/200, /*horizon=*/300000, /*seed=*/5);
  if (!run.ok()) Fail(run.status());
  std::printf(
      "\nNation report, 12s bound, 200 runs over 5 minutes:\n"
      "  local executions: %lld (%.1f%%), remote: %lld — Eq.(1) predicts "
      "%.1f%%\n",
      static_cast<long long>(run->local), 100.0 * run->LocalFraction(),
      static_cast<long long>(run->remote),
      100.0 * (12.0 - 5.0) / 15.0);

  // 4. The answer a relaxed query returns is the *cached* snapshot: show the
  //    divergence against the master copy, then catch up.
  const char* probe =
      "SELECT sum(c_acctbal) AS total FROM Customer C "
      "CURRENCY BOUND 5 MIN ON (C)";
  auto stale_total = session->Execute(probe);
  auto fresh_total = session->Execute(
      "SELECT sum(c_acctbal) AS total FROM Customer C");
  if (!stale_total.ok() || !fresh_total.ok()) Fail(stale_total.status());
  std::printf(
      "\nSUM(acctbal) cached=%.2f vs current=%.2f (update stream keeps them "
      "apart)\n",
      stale_total->rows[0][0].AsDouble(),
      fresh_total->rows[0][0].AsDouble());

  std::printf("\ntpcd_cache demo finished OK\n");
  return 0;
}
